// IR-layer tests: the hash-consed expression arena (psl/intern.h), the
// compiled checker programs (checker/program.h), parity of the compiled
// backend against both the tree interpreter and the reference evaluator,
// and the parser/printer round-trip over the full property suites.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "abv/report.h"
#include "analysis/prune.h"
#include "checker/batch.h"
#include "checker/checker.h"
#include "checker/instance.h"
#include "checker/program.h"
#include "checker/reference_eval.h"
#include "checker/trace.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "psl/ast.h"
#include "psl/intern.h"
#include "psl/parser.h"
#include "rewrite/methodology.h"
#include "rewrite/pass_manager.h"
#include "support/rng.h"

namespace repro::checker {
namespace {

using psl::ExprId;
using psl::ExprPtr;
using psl::ExprTable;

ExprPtr parse(const std::string& text) {
  auto result = psl::parse_expr(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

// ---- ExprTable (hash-consing) ---------------------------------------------------

TEST(IrExprTable, InternsStructurallyEqualTreesToSameId) {
  ExprTable table;
  const ExprId a = table.intern(parse("always (ds -> next[2](rdy))"));
  const ExprId b = table.intern(parse("always (ds -> next[2](rdy))"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, psl::kNoExpr);
}

TEST(IrExprTable, DistinguishesStructurallyDifferentTrees) {
  ExprTable table;
  EXPECT_NE(table.intern(parse("ds && rdy")), table.intern(parse("rdy && ds")));
  EXPECT_NE(table.intern(parse("a until b")), table.intern(parse("a until! b")));
  EXPECT_NE(table.intern(parse("next[2](a)")), table.intern(parse("next[3](a)")));
  EXPECT_NE(table.intern(parse("next_e[1,10](a)")),
            table.intern(parse("next_e[1,20](a)")));
  EXPECT_NE(table.intern(parse("a abort b")), table.intern(parse("a abort! b")));
}

TEST(IrExprTable, SharesSubtreesAcrossFormulas) {
  ExprTable table;
  table.intern(parse("ds && rdy"));
  const size_t before = table.size();
  // Both operands already exist; only implies + always are new.
  table.intern(parse("always (ds -> rdy)"));
  EXPECT_EQ(table.size(), before + 2);
}

TEST(IrExprTable, CountsHitsAndMisses) {
  ExprTable table;
  table.intern(parse("ds && rdy"));
  EXPECT_EQ(table.stats().hits, 0u);
  const uint64_t misses = table.stats().misses;
  table.intern(parse("ds && rdy"));  // 3 nodes, all hits
  EXPECT_EQ(table.stats().hits, 3u);
  EXPECT_EQ(table.stats().misses, misses);
}

TEST(IrExprTable, FactsMatchTreeQueries) {
  models::PropertySuite suites[] = {models::des56_suite(),
                                    models::colorconv_suite()};
  ExprTable table;
  for (const auto& suite : suites) {
    for (const auto& prop : suite.properties) {
      const ExprId id = table.intern(prop.formula);
      const ExprTable::Facts& f = table.facts(id);
      EXPECT_EQ(f.node_count, psl::node_count(prop.formula)) << prop.name;
      EXPECT_EQ(f.max_next_depth, psl::max_next_depth(prop.formula)) << prop.name;
      EXPECT_EQ(f.max_eps, psl::max_eps(prop.formula)) << prop.name;
      EXPECT_EQ(f.is_boolean, psl::is_boolean(prop.formula)) << prop.name;
      EXPECT_EQ(f.has_temporal, psl::has_temporal(prop.formula)) << prop.name;

      const std::set<std::string> expected =
          psl::referenced_signals(prop.formula);
      const std::vector<std::string>& got = table.signals(id);
      EXPECT_TRUE(std::is_sorted(got.begin(), got.end())) << prop.name;
      EXPECT_EQ(std::set<std::string>(got.begin(), got.end()), expected)
          << prop.name;
    }
  }
}

TEST(IrExprTable, ExprRebuildsStructurallyEqualTree) {
  ExprTable table;
  const ExprPtr original =
      parse("always ((ds && indata == 0) -> next_e[2,40](out != 0) abort rst)");
  const ExprId id = table.intern(original);
  const ExprPtr rebuilt = table.expr(id);
  EXPECT_TRUE(psl::equal(original, rebuilt));
  // Rebuilding twice returns the cached tree.
  EXPECT_EQ(rebuilt.get(), table.expr(id).get());
  // And re-interning the rebuilt tree is a pure cache hit.
  EXPECT_EQ(table.intern(rebuilt), id);
}

TEST(IrExprTable, IdEqualityMatchesStructuralEquality) {
  Rng rng(2026);
  ExprTable table;
  std::vector<ExprPtr> trees;
  std::vector<ExprId> ids;
  for (int i = 0; i < 40; ++i) {
    auto tree = parse(i % 2 == 0 ? "a until (b && next(c))" : "a until b");
    trees.push_back(tree);
    ids.push_back(table.intern(tree));
  }
  for (size_t i = 0; i < trees.size(); ++i) {
    for (size_t j = 0; j < trees.size(); ++j) {
      EXPECT_EQ(ids[i] == ids[j], psl::equal(trees[i], trees[j]));
    }
  }
}

// ---- Program compilation --------------------------------------------------------

TEST(IrProgram, FlattensInTopologicalOrder) {
  const auto program = Program::compile(parse("always (ds -> next[2](rdy))"));
  ASSERT_EQ(program->size(), 5u);
  // Children precede parents; the root is last.
  for (uint32_t i = 0; i < program->size(); ++i) {
    const auto& n = program->nodes()[i];
    if (n.lhs != Program::kNoNode) {
      EXPECT_LT(n.lhs, i);
    }
    if (n.rhs != Program::kNoNode) {
      EXPECT_LT(n.rhs, i);
    }
    EXPECT_LE(n.subtree_lo, i);
  }
  EXPECT_EQ(program->nodes()[program->root()].op, psl::ExprKind::kAlways);
  EXPECT_EQ(program->nodes()[program->root()].subtree_lo, 0u);
}

TEST(IrProgram, RecordsDynamicNodes) {
  const auto program =
      Program::compile(parse("always (a until! (b release c))"));
  // always, until!, release are multi-instantiating.
  EXPECT_EQ(program->dynamic_count(), 3u);
  EXPECT_EQ(program->dyn_before(0), 0u);
  for (uint32_t ord = 0; ord < program->dynamic_count(); ++ord) {
    const uint32_t n = program->dyn_node(ord);
    EXPECT_EQ(program->dyn_before(n), ord);
    switch (program->nodes()[n].op) {
      case psl::ExprKind::kUntil:
      case psl::ExprKind::kRelease:
      case psl::ExprKind::kAlways:
      case psl::ExprKind::kEventually:
        break;
      default:
        ADD_FAILURE() << "non-dynamic opcode at dyn_node(" << ord << ")";
    }
  }
}

TEST(IrProgram, DedupsAtoms) {
  const auto program = Program::compile(parse("ds && (ds || ds)"));
  EXPECT_EQ(program->atoms().size(), 1u);
}

TEST(IrProgram, CompilesFromInternedId) {
  ExprTable table;
  const ExprPtr tree = parse("always (ds -> next_e[1,20](rdy))");
  const auto a = Program::compile(tree);
  const auto b = Program::compile(table, table.intern(tree));
  ASSERT_EQ(a->size(), b->size());
  for (uint32_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->nodes()[i].op, b->nodes()[i].op) << i;
  }
}

TEST(IrProgram, DumpListsEveryNode) {
  const auto program =
      Program::compile(parse("always ((ds && rdy) -> next[3](out != 0))"));
  std::ostringstream os;
  program->dump(os);
  const std::string listing = os.str();
  EXPECT_NE(listing.find("always"), std::string::npos);
  EXPECT_NE(listing.find("implies"), std::string::npos);
  EXPECT_NE(listing.find("out != 0"), std::string::npos);
  EXPECT_NE(listing.find("root @"), std::string::npos);
}

// ---- Compiled backend parity ----------------------------------------------------

// Same generator family as checker_test.cc's randomized sweep, kept local so
// the two suites can evolve independently.
ExprPtr random_formula(Rng& rng, int depth) {
  const char* signals[] = {"a", "b", "c"};
  if (depth <= 0 || rng.chance(1, 3)) {
    switch (rng.below(4)) {
      case 0:
        return psl::sig(signals[rng.below(3)]);
      case 1:
        return psl::not_(psl::sig(signals[rng.below(3)]));
      case 2:
        return psl::cmp(signals[rng.below(3)], psl::CmpOp::kEq, rng.below(3));
      default:
        return psl::cmp(signals[rng.below(3)], psl::CmpOp::kGe, rng.below(3));
    }
  }
  switch (rng.below(10)) {
    case 0:
      return psl::and_(random_formula(rng, depth - 1),
                       random_formula(rng, depth - 1));
    case 1:
      return psl::or_(random_formula(rng, depth - 1),
                      random_formula(rng, depth - 1));
    case 2:
      return psl::implies(random_formula(rng, depth - 1),
                          random_formula(rng, depth - 1));
    case 3:
      return psl::next(static_cast<uint32_t>(rng.range(1, 3)),
                       random_formula(rng, depth - 1));
    case 4:
      return psl::next_eps(1, rng.range(1, 5) * 10,
                           random_formula(rng, depth - 1));
    case 5:
      return psl::until(random_formula(rng, depth - 1),
                        random_formula(rng, depth - 1), rng.chance(1, 2));
    case 6:
      return psl::release(random_formula(rng, depth - 1),
                          random_formula(rng, depth - 1));
    case 7:
      return psl::always(random_formula(rng, depth - 1));
    case 8:
      return psl::abort_(random_formula(rng, depth - 1),
                         psl::sig(signals[rng.below(3)]));
    default:
      return psl::eventually(random_formula(rng, depth - 1));
  }
}

Trace random_trace(Rng& rng, size_t max_len) {
  Trace trace;
  psl::TimeNs time = 10;
  const size_t len = rng.range(1, max_len);
  for (size_t i = 0; i < len; ++i) {
    Observation o;
    o.time = time;
    o.values.set("a", rng.below(3));
    o.values.set("b", rng.below(3));
    o.values.set("c", rng.below(3));
    trace.push_back(std::move(o));
    time += 10 * rng.range(1, 3);
  }
  return trace;
}

class IrBackendParity : public ::testing::TestWithParam<int> {};

// Three-way parity: interpreter vs scalar compiled vs (for frame-free
// programs) a lockstep lane of the vectorized backend. The lane instance is
// absent when the random formula drew a dynamic operator — exactly the
// per-property fallback the wrapper applies.
TEST_P(IrBackendParity, CompiledMatchesInterpreterAndReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6271 + 5);
  const ExprPtr formula = random_formula(rng, 3);
  const Trace trace = random_trace(rng, 12);

  const auto program = Program::compile(formula);
  Instance interpreted(formula);
  Instance compiled(program);
  std::unique_ptr<Instance> lane;
  if (ProgramBatch::supported(*program)) {
    auto block = std::make_shared<BatchState>(
        std::make_shared<const ProgramBatch>(program));
    lane = std::make_unique<Instance>(block, block->allocate_lane());
  }
  for (size_t k = 0; k < trace.size(); ++k) {
    const Event ev{trace[k].time, &trace[k].values};
    const Verdict vi = interpreted.step(ev);
    const Verdict vc = compiled.step(ev);
    ASSERT_EQ(vc, vi) << "formula: " << psl::to_string(formula)
                      << "\nprefix length: " << k + 1;
    ASSERT_EQ(compiled.next_deadline(), interpreted.next_deadline())
        << "formula: " << psl::to_string(formula) << "\nprefix length: " << k + 1;
    if (lane != nullptr) {
      ASSERT_EQ(lane->step(ev), vc)
          << "vector lane diverged: " << psl::to_string(formula)
          << "\nprefix length: " << k + 1;
      ASSERT_EQ(lane->next_deadline(), compiled.next_deadline())
          << "formula: " << psl::to_string(formula)
          << "\nprefix length: " << k + 1;
    }
    const Trace prefix(trace.begin(), trace.begin() + k + 1);
    ASSERT_EQ(vc, reference_eval(formula, prefix, 0, /*complete=*/false))
        << "formula: " << psl::to_string(formula);
    if (vc != Verdict::kPending) return;
  }
  ASSERT_EQ(compiled.finish(), interpreted.finish())
      << "formula: " << psl::to_string(formula);
  if (lane != nullptr) {
    ASSERT_EQ(lane->finish(), compiled.verdict())
        << "formula: " << psl::to_string(formula);
  }
  ASSERT_EQ(compiled.verdict(), reference_eval(formula, trace, 0, true))
      << "formula: " << psl::to_string(formula);
}

TEST_P(IrBackendParity, ResetCompiledInstanceBehavesLikeFresh) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 30011 + 7);
  const ExprPtr formula = random_formula(rng, 3);
  const Trace first = random_trace(rng, 8);
  const Trace second = random_trace(rng, 8);

  const auto program = Program::compile(formula);
  Instance reused(program);
  for (const auto& o : first) {
    if (reused.step(Event{o.time, &o.values}) != Verdict::kPending) break;
  }
  reused.reset();

  Instance fresh(program);
  for (const auto& o : second) {
    const Verdict a = reused.step(Event{o.time, &o.values});
    const Verdict b = fresh.step(Event{o.time, &o.values});
    ASSERT_EQ(a, b) << psl::to_string(formula);
    if (a != Verdict::kPending) return;
  }
  ASSERT_EQ(reused.finish(), fresh.finish()) << psl::to_string(formula);
}

// Coverage-counter parity at the checker level: the same random formula
// wrapped in `always` and driven through three full PropertyChecker
// backends (interpreter, compiled scalar, compiled+vectorized). Every
// CheckerStats field — including the vacuity split and the node-visit cost
// proxy — must be byte-identical; only the vector_* accounting may differ.
TEST_P(IrBackendParity, CoverageCountersIdenticalAcrossBackends) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 40127 + 11);
  const ExprPtr formula = psl::always(random_formula(rng, 3));
  const Trace trace = random_trace(rng, 16);

  CheckerOptions interp_opts;
  interp_opts.compiled = false;
  CheckerOptions scalar_opts;
  scalar_opts.compiled = true;
  scalar_opts.vectorized = false;
  CheckerOptions vector_opts;
  vector_opts.compiled = true;
  vector_opts.vectorized = true;
  PropertyChecker interp("p", formula, nullptr, interp_opts);
  PropertyChecker scalar("p", formula, nullptr, scalar_opts);
  PropertyChecker vector("p", formula, nullptr, vector_opts);
  for (const Observation& o : trace) {
    interp.on_event(o.time, o.values);
    scalar.on_event(o.time, o.values);
    vector.on_event(o.time, o.values);
  }
  interp.finish();
  scalar.finish();
  vector.finish();

  const auto expect_same = [&](const CheckerStats& a, const CheckerStats& b) {
    EXPECT_EQ(a.events, b.events) << psl::to_string(formula);
    EXPECT_EQ(a.activations, b.activations) << psl::to_string(formula);
    EXPECT_EQ(a.failures, b.failures) << psl::to_string(formula);
    EXPECT_EQ(a.holds, b.holds) << psl::to_string(formula);
    EXPECT_EQ(a.trivial, b.trivial) << psl::to_string(formula);
    EXPECT_EQ(a.uncompleted, b.uncompleted) << psl::to_string(formula);
    EXPECT_EQ(a.steps, b.steps) << psl::to_string(formula);
    EXPECT_EQ(a.real_passes, b.real_passes) << psl::to_string(formula);
    EXPECT_EQ(a.vacuous_passes, b.vacuous_passes) << psl::to_string(formula);
    EXPECT_EQ(a.node_visits, b.node_visits) << psl::to_string(formula);
  };
  expect_same(interp.stats(), scalar.stats());
  expect_same(scalar.stats(), vector.stats());
  // The split partitions the holds exactly.
  EXPECT_EQ(scalar.stats().holds,
            scalar.stats().real_passes + scalar.stats().vacuous_passes);
}

// Boolean-only random formula for activation guards.
ExprPtr random_guard(Rng& rng, int depth) {
  const char* signals[] = {"a", "b", "c"};
  if (depth <= 0 || rng.chance(1, 2)) {
    switch (rng.below(3)) {
      case 0:
        return psl::sig(signals[rng.below(3)]);
      case 1:
        return psl::not_(psl::sig(signals[rng.below(3)]));
      default:
        return psl::cmp(signals[rng.below(3)], psl::CmpOp::kGe, rng.below(3));
    }
  }
  return rng.chance(1, 2)
             ? psl::and_(random_guard(rng, depth - 1),
                         random_guard(rng, depth - 1))
             : psl::or_(random_guard(rng, depth - 1),
                        random_guard(rng, depth - 1));
}

// Prune leg of the randomized sweep: a single-property aggressive plan over
// a random formula with a random activation guard. Every static claim the
// planner makes must agree with the real checker on a random trace — an
// elided-true property never fails, an elided-false property fails at every
// activation (such formulas resolve at their anchor), and a specialized
// formula is verdict- and counter-identical under the same guard.
TEST_P(IrBackendParity, PrunePlanSoundOnRandomFormulas) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 52361 + 13);
  const ExprPtr formula = psl::always(random_formula(rng, 3));
  const ExprPtr guard = rng.chance(1, 2) ? random_guard(rng, 2) : nullptr;

  analysis::PruneInput input;
  input.name = "p";
  input.formula = formula;
  input.guard = guard;
  input.context_key = "posedge";
  const auto plan =
      analysis::build_prune_plan({input}, analysis::PruneMode::kAggressive);
  ASSERT_EQ(plan.decisions.size(), 1u);
  const analysis::PruneDecision& d = plan.decisions[0];

  const Trace trace = random_trace(rng, 14);
  PropertyChecker real("p", formula, guard, {});
  for (const auto& o : trace) real.on_event(o.time, o.values);
  real.finish();

  if (d.action == analysis::PruneAction::kElide) {
    if (d.static_verdict) {
      EXPECT_EQ(real.stats().failures, 0u) << psl::to_string(formula);
    } else {
      EXPECT_EQ(real.stats().failures, real.stats().activations)
          << psl::to_string(formula);
    }
    return;
  }
  if (d.specialized != nullptr) {
    PropertyChecker spec("p", d.specialized, guard, {});
    for (const auto& o : trace) spec.on_event(o.time, o.values);
    spec.finish();
    EXPECT_EQ(spec.stats().activations, real.stats().activations)
        << psl::to_string(formula) << "\nguard: " << psl::to_string(guard)
        << "\nspecialized: " << psl::to_string(d.specialized);
    EXPECT_EQ(spec.stats().failures, real.stats().failures)
        << psl::to_string(formula) << "\nguard: " << psl::to_string(guard)
        << "\nspecialized: " << psl::to_string(d.specialized);
    EXPECT_EQ(spec.ok(), real.ok()) << psl::to_string(formula);
  }
}

// Subsumption claims checked dynamically: when the planner prunes one of
// two random properties, the surviving checker's verdict must bound the
// pruned one's on shared random traces (subsumer ok => subsumed ok).
TEST_P(IrBackendParity, PruneSubsumptionImpliesVerdictOnRandomTraces) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 77003 + 29);
  const ExprPtr f[2] = {psl::always(random_formula(rng, 2)),
                        psl::always(random_formula(rng, 2))};
  std::vector<analysis::PruneInput> inputs(2);
  inputs[0].name = "q0";
  inputs[0].formula = f[0];
  inputs[0].context_key = "posedge";
  inputs[1].name = "q1";
  inputs[1].formula = f[1];
  inputs[1].context_key = "posedge";
  const auto plan =
      analysis::build_prune_plan(inputs, analysis::PruneMode::kSafe);
  for (size_t j = 0; j < plan.decisions.size(); ++j) {
    const analysis::PruneDecision& d = plan.decisions[j];
    if (d.action != analysis::PruneAction::kSubsumed) continue;
    const size_t i = d.subsumed_by == "q0" ? 0 : 1;
    for (int round = 0; round < 3; ++round) {
      const Trace trace = random_trace(rng, 12);
      PropertyChecker subsumer("i", f[i], nullptr, {});
      PropertyChecker subsumed("j", f[j], nullptr, {});
      for (const auto& o : trace) {
        subsumer.on_event(o.time, o.values);
        subsumed.on_event(o.time, o.values);
      }
      subsumer.finish();
      subsumed.finish();
      if (subsumer.ok()) {
        EXPECT_TRUE(subsumed.ok())
            << "subsumer: " << psl::to_string(f[i])
            << "\nsubsumed: " << psl::to_string(f[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IrBackendParity, ::testing::Range(0, 200));

TEST(IrBackendParitySuites, SuitePropertiesAgreeOnRandomTraces) {
  // Every suite property (the always-stripped body is what wrappers run, but
  // here the full formula) stepped over shared random traces on both
  // backends.
  Rng rng(97);
  models::PropertySuite suites[] = {models::des56_suite(),
                                    models::colorconv_suite()};
  for (const auto& suite : suites) {
    for (const auto& prop : suite.properties) {
      const auto program = Program::compile(prop.formula);
      for (int round = 0; round < 5; ++round) {
        Trace trace;
        psl::TimeNs time = 10;
        const size_t len = rng.range(4, 20);
        for (size_t i = 0; i < len; ++i) {
          Observation o;
          o.time = time;
          for (const auto& name : psl::referenced_signals(prop.formula)) {
            o.values.set(name, rng.below(4));
          }
          trace.push_back(std::move(o));
          time += 10;
        }
        Instance interpreted(prop.formula);
        Instance compiled(program);
        bool resolved = false;
        for (const auto& o : trace) {
          const Event ev{o.time, &o.values};
          const Verdict vi = interpreted.step(ev);
          const Verdict vc = compiled.step(ev);
          ASSERT_EQ(vc, vi) << suite.design << "." << prop.name;
          if (vc != Verdict::kPending) {
            resolved = true;
            break;
          }
        }
        if (!resolved) {
          ASSERT_EQ(compiled.finish(), interpreted.finish())
              << suite.design << "." << prop.name;
        }
      }
    }
  }
}

// ---- Pass manager ---------------------------------------------------------------

rewrite::AbstractionOptions p3_options() {
  rewrite::AbstractionOptions options;
  options.clock_period_ns = 10;
  options.abstracted_signals = {"rdy_next_cycle", "rdy_next_next_cycle"};
  return options;
}

psl::RtlProperty fig3_p3() {
  auto parsed = psl::parse_rtl_property(
      "p3: always (!ds || (next[15](rdy_next_next_cycle) && "
      "next[16](rdy_next_cycle) && next[17](rdy))) @clk_pos");
  EXPECT_TRUE(parsed.ok());
  return parsed.value();
}

TEST(IrPassManager, RecordsOneTracePerStageForP3) {
  rewrite::PassManager pm(p3_options());
  const rewrite::AbstractionOutcome outcome =
      rewrite::abstract_property(pm, fig3_p3());
  ASSERT_FALSE(outcome.deleted());
  EXPECT_EQ(psl::to_string(*outcome.property),
            "always !ds || next_e[1,170](rdy) @Tb");

  ASSERT_EQ(outcome.passes.size(), 5u);
  EXPECT_EQ(outcome.passes[0].pass, "nnf");
  EXPECT_EQ(outcome.passes[1].pass, "signal-abstraction");
  EXPECT_EQ(outcome.passes[2].pass, "push-ahead");
  EXPECT_EQ(outcome.passes[3].pass, "next-substitution");
  EXPECT_EQ(outcome.passes[4].pass, "context-map");

  // Fig. 3's pipeline: signal abstraction drops the two next-chains over
  // abstracted handshake signals, Algorithm III.1 rewrites the surviving
  // next[17] into next_e[1, 170].
  EXPECT_TRUE(outcome.passes[1].changed);
  EXPECT_EQ(outcome.passes[1].after, "always !ds || next[17](rdy)");
  EXPECT_LT(outcome.passes[1].nodes_after, outcome.passes[1].nodes_before);
  EXPECT_FALSE(outcome.passes[1].notes.empty());
  EXPECT_TRUE(outcome.passes[3].changed);
  EXPECT_EQ(outcome.passes[3].after, "always !ds || next_e[1,170](rdy)");
  EXPECT_EQ(outcome.passes[4].before, "clk_pos");
  EXPECT_EQ(outcome.passes[4].after, "Tb");

  // First run: nothing cached.
  for (const auto& t : outcome.passes) {
    EXPECT_FALSE(t.cache_hit) << t.pass;
  }
}

TEST(IrPassManager, MemoizesRepeatedAbstraction) {
  rewrite::PassManager pm(p3_options());
  rewrite::abstract_property(pm, fig3_p3());
  const auto stats_before = pm.cache_stats();
  EXPECT_EQ(stats_before.hits, 0u);
  EXPECT_EQ(stats_before.misses, 4u);

  const rewrite::AbstractionOutcome again =
      rewrite::abstract_property(pm, fig3_p3());
  EXPECT_EQ(pm.cache_stats().hits, 4u);
  EXPECT_EQ(pm.cache_stats().misses, 4u);
  // All rewrite stages report the memo hit; results are identical.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(again.passes[i].cache_hit) << again.passes[i].pass;
  }
  EXPECT_EQ(psl::to_string(*again.property),
            "always !ds || next_e[1,170](rdy) @Tb");
  EXPECT_EQ(again.classification, rewrite::AbstractionClass::kConsequence);
}

TEST(IrPassManager, ThrowawayOverloadMatchesSharedManager) {
  // The legacy entry point must produce identical outcomes (the suites and
  // examples depend on it).
  const rewrite::AbstractionOutcome a =
      rewrite::abstract_property(fig3_p3(), p3_options());
  rewrite::PassManager pm(p3_options());
  const rewrite::AbstractionOutcome b = rewrite::abstract_property(pm, fig3_p3());
  ASSERT_FALSE(a.deleted());
  ASSERT_FALSE(b.deleted());
  EXPECT_TRUE(psl::equal(a.property->formula, b.property->formula));
  EXPECT_EQ(a.notes, b.notes);
  EXPECT_EQ(a.classification, b.classification);
}

TEST(IrPassManager, SuiteSharesOneManager) {
  // Abstracting the full DES56 suite twice in one call list: the repeated
  // property bodies hit the memo (hits > 0 requires shared state).
  const models::PropertySuite suite = models::des56_suite();
  std::vector<psl::RtlProperty> doubled = suite.properties;
  doubled.insert(doubled.end(), suite.properties.begin(),
                 suite.properties.end());
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  const auto outcomes = rewrite::abstract_suite(doubled, options);
  ASSERT_EQ(outcomes.size(), doubled.size());
  for (size_t i = 0; i < suite.properties.size(); ++i) {
    const auto& first = outcomes[i];
    const auto& second = outcomes[i + suite.properties.size()];
    EXPECT_EQ(first.deleted(), second.deleted()) << suite.properties[i].name;
    if (!first.deleted()) {
      EXPECT_TRUE(psl::equal(first.property->formula, second.property->formula));
      // The second run of every property is answered from the memo.
      for (size_t s = 0; s < 4; ++s) {
        EXPECT_TRUE(second.passes[s].cache_hit)
            << suite.properties[i].name << " " << second.passes[s].pass;
      }
    }
  }
}

TEST(IrPassManager, DeletedPropertyStopsAfterSignalAbstraction) {
  rewrite::AbstractionOptions options;
  options.abstracted_signals = {"a", "b"};
  rewrite::PassManager pm(options);
  auto parsed = psl::parse_rtl_property("always (a -> next(b)) @clk_pos");
  ASSERT_TRUE(parsed.ok());
  const auto outcome = rewrite::abstract_property(pm, parsed.value());
  EXPECT_TRUE(outcome.deleted());
  ASSERT_EQ(outcome.passes.size(), 2u);
  EXPECT_EQ(outcome.passes[1].pass, "signal-abstraction");
  EXPECT_EQ(outcome.passes[1].after, "(deleted)");
  EXPECT_EQ(outcome.passes[1].nodes_after, 0u);
}

TEST(IrPassManager, FormatPassesRendersEveryStage) {
  rewrite::PassManager pm(p3_options());
  const auto outcome = rewrite::abstract_property(pm, fig3_p3());
  const std::string text = rewrite::format_passes(outcome.passes);
  EXPECT_NE(text.find("[1] nnf"), std::string::npos);
  EXPECT_NE(text.find("[2] signal-abstraction"), std::string::npos);
  EXPECT_NE(text.find("[5] context-map"), std::string::npos);
  EXPECT_NE(text.find("next_e[1,170](rdy)"), std::string::npos);
  EXPECT_NE(text.find("changed"), std::string::npos);
}

// ---- Parser/printer round trip --------------------------------------------------

void expect_roundtrip(const ExprPtr& formula, const std::string& label) {
  const std::string printed = psl::to_string(formula);
  auto reparsed = psl::parse_expr(printed);
  ASSERT_TRUE(reparsed.ok())
      << label << ": " << printed << ": " << reparsed.error().to_string();
  EXPECT_TRUE(psl::equal(formula, reparsed.value()))
      << label << ": " << printed << " -> " << psl::to_string(reparsed.value());
}

TEST(IrRoundTrip, AllSuitePropertiesSurviveParsePrintParse) {
  models::PropertySuite suites[] = {models::des56_suite(),
                                    models::colorconv_suite()};
  for (const auto& suite : suites) {
    for (const auto& prop : suite.properties) {
      expect_roundtrip(prop.formula, suite.design + "." + prop.name);
    }
  }
  expect_roundtrip(models::des56_p2_paper().formula, "des56.p2_paper");
}

TEST(IrRoundTrip, RandomFormulasSurviveParsePrintParse) {
  Rng rng(31415);
  for (int i = 0; i < 300; ++i) {
    const ExprPtr formula = random_formula(rng, 4);
    expect_roundtrip(formula, "random#" + std::to_string(i));
    // And interning the reparsed tree yields the same id as the original.
    ExprTable table;
    const ExprId a = table.intern(formula);
    const ExprId b =
        table.intern(psl::parse_expr(psl::to_string(formula)).value());
    EXPECT_EQ(a, b) << psl::to_string(formula);
  }
}

// ---- Backend-equivalence golden runs --------------------------------------------

// Runs the whole TLM-AT flow with the compiled and interpreter backends and
// requires bit-identical verification results: an empty Report::diff and a
// byte-identical JSON report (timing excluded). Covers both designs at
// jobs=1 and jobs=4.
void expect_backends_equivalent(models::Design design, size_t workload,
                                size_t jobs) {
  models::RunConfig config;
  config.design = design;
  config.level = models::Level::kTlmAt;
  config.workload = workload;
  config.checkers = 99;  // whole suite (clamped)
  config.engine.jobs = jobs;

  config.compiled_checkers = true;
  const models::RunResult compiled = models::run_simulation(config);
  EXPECT_TRUE(compiled.functional_ok);
  EXPECT_TRUE(compiled.properties_ok);

  config.compiled_checkers = false;
  const models::RunResult interp = models::run_simulation(config);
  EXPECT_TRUE(interp.functional_ok);

  EXPECT_TRUE(compiled.report.diff(interp.report).empty());
  std::ostringstream a;
  std::ostringstream b;
  compiled.report.write_json(a, nullptr);
  interp.report.write_json(b, nullptr);
  EXPECT_EQ(a.str(), b.str());
}

TEST(IrBackendEquivalence, Des56TlmAtSerial) {
  expect_backends_equivalent(models::Design::kDes56, 60, 1);
}

TEST(IrBackendEquivalence, Des56TlmAtSharded) {
  expect_backends_equivalent(models::Design::kDes56, 60, 4);
}

TEST(IrBackendEquivalence, ColorConvTlmAtSerial) {
  expect_backends_equivalent(models::Design::kColorConv, 600, 1);
}

TEST(IrBackendEquivalence, ColorConvTlmAtSharded) {
  expect_backends_equivalent(models::Design::kColorConv, 600, 4);
}

}  // namespace
}  // namespace repro::checker
