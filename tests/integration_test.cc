// End-to-end integration tests: the dynamic-ABV analogue of Theorems III.1
// and III.2, run through the full simulation harness at every abstraction
// level, plus the negative results (naive reuse and the paper-exact push
// mode spuriously failing at TLM-AT) and bug detection.
#include <gtest/gtest.h>

#include "models/properties.h"
#include "models/testbench.h"
#include "rewrite/methodology.h"

namespace repro::models {
namespace {

RunResult run(Design design, Level level, size_t checkers, size_t workload,
              rewrite::PushMode mode = rewrite::PushMode::kOpaqueFixpoints) {
  RunConfig config;
  config.design = design;
  config.level = level;
  config.checkers = checkers;
  config.workload = workload;
  config.abstraction.push_mode = mode;
  return run_simulation(config);
}

// ---- Suites sanity -----------------------------------------------------------

TEST(Suites, HavePaperCardinalities) {
  EXPECT_EQ(des56_suite().properties.size(), 9u);        // Sec. V: 9 properties
  EXPECT_EQ(colorconv_suite().properties.size(), 12u);   // Sec. V: 12 properties
}

TEST(Suites, NoPropertyIsDeletedByAbstraction) {
  // Sec. V: "All properties were preserved during the abstraction process."
  for (const PropertySuite& suite : {des56_suite(), colorconv_suite()}) {
    rewrite::AbstractionOptions options;
    options.clock_period_ns = suite.clock_period_ns;
    options.abstracted_signals = suite.abstracted_signals;
    for (const auto& outcome : rewrite::abstract_suite(suite.properties, options)) {
      EXPECT_FALSE(outcome.deleted());
    }
  }
}

// ---- Theorem III.2, dynamically ---------------------------------------------------

class FullFlow : public ::testing::TestWithParam<Design> {};

TEST_P(FullFlow, PropertiesHoldAtRtl) {
  const size_t n = GetParam() == Design::kDes56 ? 9 : 12;
  const RunResult r = run(GetParam(), Level::kRtl, n, 120);
  EXPECT_TRUE(r.functional_ok) << r.mismatches << " mismatches";
  EXPECT_TRUE(r.properties_ok);
  EXPECT_EQ(r.report.total_failures(), 0u);
}

TEST_P(FullFlow, UnabstractedPropertiesHoldAtTlmCa) {
  // Theorem III.1 territory: per-cycle transactions stand for clock edges.
  const size_t n = GetParam() == Design::kDes56 ? 9 : 12;
  const RunResult r = run(GetParam(), Level::kTlmCa, n, 120);
  EXPECT_TRUE(r.functional_ok);
  EXPECT_TRUE(r.properties_ok);
}

TEST_P(FullFlow, AbstractedPropertiesHoldAtTlmAt) {
  // Theorem III.2: every property that holds at RTL holds, after
  // Methodology III.1, on the timing-equivalent TLM-AT model.
  const size_t n = GetParam() == Design::kDes56 ? 9 : 12;
  const RunResult r = run(GetParam(), Level::kTlmAt, n, 120);
  EXPECT_TRUE(r.functional_ok);
  EXPECT_TRUE(r.properties_ok);
  EXPECT_EQ(r.properties_deleted, 0u);
  // Non-vacuity: every property must actually have been activated.
  for (const auto& p : r.report.properties()) {
    EXPECT_GT(p.activations, 0u) << p.name;
  }
}

TEST_P(FullFlow, CheckersDoNotPerturbSimulation) {
  // The instrumented run must produce the same functional results and the
  // same simulated end time as the bare run.
  const RunResult bare = run(GetParam(), Level::kTlmAt, 0, 80);
  const size_t n = GetParam() == Design::kDes56 ? 9 : 12;
  const RunResult checked = run(GetParam(), Level::kTlmAt, n, 80);
  EXPECT_EQ(bare.sim_end_ns, checked.sim_end_ns);
  EXPECT_EQ(bare.ops_completed, checked.ops_completed);
  EXPECT_TRUE(checked.functional_ok);
}

INSTANTIATE_TEST_SUITE_P(BothDesigns, FullFlow,
                         ::testing::Values(Design::kDes56, Design::kColorConv),
                         [](const ::testing::TestParamInfo<Design>& info) {
                           return std::string(to_string(info.param));
                         });

// ---- Determinism -------------------------------------------------------------------

TEST(Determinism, SameSeedSameOutcome) {
  const RunResult a = run(Design::kDes56, Level::kRtl, 9, 60);
  const RunResult b = run(Design::kDes56, Level::kRtl, 9, 60);
  EXPECT_EQ(a.sim_end_ns, b.sim_end_ns);
  EXPECT_EQ(a.kernel_events, b.kernel_events);
  EXPECT_EQ(a.report.total_activations(), b.report.total_activations());
}

TEST(Determinism, DifferentSeedDifferentSchedule) {
  RunConfig config;
  config.design = Design::kDes56;
  config.level = Level::kRtl;
  config.workload = 60;
  const RunResult a = run_simulation(config);
  config.seed = 4711;
  const RunResult b = run_simulation(config);
  EXPECT_NE(a.sim_end_ns, b.sim_end_ns);
  EXPECT_TRUE(a.functional_ok);
  EXPECT_TRUE(b.functional_ok);
}

// ---- Negative results: the ablations of Sec. III-A ------------------------------------

TEST(Ablation, NaiveEventCountingFailsSpuriouslyAtTlmAt) {
  // Reusing unabstracted next[n] properties at TLM-AT counts transactions
  // instead of cycles: p7 (next[17](rdy)) must fail on a CORRECT model.
  RunConfig config;
  config.design = Design::kDes56;
  config.level = Level::kTlmAt;
  config.workload = 60;
  config.property_indices = {6};  // p7
  config.abstraction.at_replay_unabstracted = true;
  const RunResult r = run_simulation(config);
  EXPECT_TRUE(r.functional_ok);      // the model is correct...
  EXPECT_FALSE(r.properties_ok);     // ...yet the naive checker fails
  EXPECT_GT(r.report.total_failures(), 0u);
}

TEST(Ablation, PaperPushModeFailsOnUntilUnderNextAtTlmAt) {
  // Fig. 3's q2 shape: distributing next into the until produces
  // per-position next_e deadlines that no sparse AT stream can satisfy.
  const RunResult paper =
      run(Design::kDes56, Level::kTlmAt, 2, 60,
          rewrite::PushMode::kDistributeThroughFixpoints);  // p1, p2
  EXPECT_TRUE(paper.functional_ok);
  EXPECT_FALSE(paper.properties_ok);

  // The opaque-fixpoint mode keeps the same two properties sound.
  const RunResult sound = run(Design::kDes56, Level::kTlmAt, 2, 60);
  EXPECT_TRUE(sound.properties_ok);
}

TEST(Ablation, AbstractedCheckersStillHoldAtTlmCa) {
  // Sanity for the push-mode comparison: at TLM-CA every grid instant has a
  // transaction, so even the paper-exact q2 deadlines are all observable.
  const auto suite = des56_suite();
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.push_mode = rewrite::PushMode::kDistributeThroughFixpoints;
  const auto outcome = rewrite::abstract_property(des56_p2_paper(), options);
  ASSERT_FALSE(outcome.deleted());
  EXPECT_EQ(psl::to_string(outcome.property->formula),
            "always !ds || (next_e[1,10](!ds) until next_e[2,20](rdy))");
}

// ---- Workload scaling ----------------------------------------------------------------

TEST(Scaling, TransactionCountsMatchProtocol) {
  const RunResult des = run(Design::kDes56, Level::kTlmAt, 9, 50);
  // 4 timing points per operation (Sec. IV structure).
  EXPECT_EQ(des.transactions, 50u * 4u);

  const RunResult ca = run(Design::kDes56, Level::kTlmCa, 0, 50);
  // One transaction per cycle: at least 18 cycles per op.
  EXPECT_GT(ca.transactions, 50u * 18u);
}

}  // namespace
}  // namespace repro::models
