// Analysis-guided runtime pruning (analysis/prune.h + the abv/models
// integration): planner classification on the bundled suites and synthetic
// corner cases, subsumption edge cases (mutual implication, chains, the BDD
// atom cap), guard containment and context-key gating, specialization
// folding, plan JSON, and the end-to-end verdict-equivalence contract
// (pruned vs unpruned reports at jobs 1 and 4 on both designs).
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "abv/report.h"
#include "analysis/prune.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "psl/ast.h"
#include "psl/parser.h"

namespace repro::analysis {
namespace {

std::vector<PruneInput> inputs_from(const std::string& text) {
  auto parsed = psl::parse_rtl_property_file(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error().message;
  std::vector<PruneInput> inputs;
  for (const auto& p : parsed.value()) inputs.push_back(make_prune_input(p));
  return inputs;
}

std::vector<PruneInput> suite_inputs(const models::PropertySuite& suite) {
  std::vector<PruneInput> inputs;
  for (const auto& p : suite.properties) inputs.push_back(make_prune_input(p));
  return inputs;
}

const PruneDecision& decision(const PrunePlan& plan, const std::string& name) {
  const PruneDecision* d = plan.find(name);
  EXPECT_NE(d, nullptr) << name;
  static const PruneDecision missing;
  return d != nullptr ? *d : missing;
}

// ---- Mode parsing ---------------------------------------------------------------

TEST(PruneMode, ParsesKnownModesAndRejectsGarbage) {
  PruneMode mode = PruneMode::kAggressive;
  EXPECT_TRUE(parse_prune_mode("off", mode));
  EXPECT_EQ(mode, PruneMode::kOff);
  EXPECT_TRUE(parse_prune_mode("safe", mode));
  EXPECT_EQ(mode, PruneMode::kSafe);
  EXPECT_TRUE(parse_prune_mode("aggressive", mode));
  EXPECT_EQ(mode, PruneMode::kAggressive);
  EXPECT_FALSE(parse_prune_mode("", mode));
  EXPECT_FALSE(parse_prune_mode("Safe", mode));
  EXPECT_FALSE(parse_prune_mode("on", mode));
}

// ---- Static verdicts (elision) --------------------------------------------------

TEST(PruneStatic, ElidesTautologies) {
  const auto plan = build_prune_plan(
      inputs_from("t1: always (rdy || !rdy) @clk_pos;\n"
                  "t2: always (ds -> ds) @clk_pos;\n"
                  "t3: always ((a && b) -> a) @clk_pos;"),
      PruneMode::kSafe);
  EXPECT_EQ(plan.elided(), 3u);
  EXPECT_EQ(plan.live(), 0u);
  for (const char* name : {"t1", "t2", "t3"}) {
    const auto& d = decision(plan, name);
    EXPECT_EQ(d.action, PruneAction::kElide) << name;
    EXPECT_TRUE(d.static_verdict) << name;
  }
}

TEST(PruneStatic, ElidesTemporalFormulasThatCannotFail) {
  // Weak operators over tautological obligations, and strong eventualities
  // with a guaranteed witness, never produce a failure.
  const auto plan = build_prune_plan(
      inputs_from("w1: always (next[3](a || !a)) @clk_pos;\n"
                  "w2: always (a until (b || !b)) @clk_pos;\n"
                  "s1: eventually! (rdy || !rdy) @clk_pos;\n"
                  "s2: always (a until! (b -> b)) @clk_pos;"),
      PruneMode::kSafe);
  EXPECT_EQ(plan.elided(), 4u);
}

TEST(PruneStatic, KeepsStrongObligationsWithoutGuaranteedWitness) {
  // `eventually! rdy` can fail on a trace where rdy never rises; the
  // deadline form can miss its window. Neither may be elided.
  const auto plan = build_prune_plan(
      inputs_from("e1: eventually! rdy @clk_pos;\n"
                  "e2: always (ds -> next_e[1,40](rdy)) @clk_pos;"),
      PruneMode::kSafe);
  EXPECT_EQ(decision(plan, "e1").action, PruneAction::kLive);
  EXPECT_EQ(decision(plan, "e2").action, PruneAction::kLive);
}

TEST(PruneStatic, ContradictionStaysLiveInSafeMode) {
  const auto plan = build_prune_plan(
      inputs_from("bad: always (rdy && !rdy) @clk_pos;"), PruneMode::kSafe);
  EXPECT_EQ(decision(plan, "bad").action, PruneAction::kLive);
}

TEST(PruneStatic, AggressiveElidesContradictionWithDerivedFailure) {
  const auto plan =
      build_prune_plan(inputs_from("bad: always (rdy && !rdy) @clk_pos;"),
                       PruneMode::kAggressive);
  const auto& d = decision(plan, "bad");
  EXPECT_EQ(d.action, PruneAction::kElide);
  EXPECT_FALSE(d.static_verdict);
}

// ---- Subsumption ----------------------------------------------------------------

TEST(PruneSubsume, ChainKeepsOnlyTheStrongestLive) {
  // a => b => c pointwise; only a survives and both others name it (the
  // minimal *live* entailer), not each other.
  const auto plan = build_prune_plan(
      inputs_from("c: always (!ds || rdy || err) @clk_pos;\n"
                  "b: always (!ds || rdy) @clk_pos;\n"
                  "a: always (!ds || (rdy && !err)) @clk_pos;"),
      PruneMode::kSafe);
  EXPECT_EQ(plan.live(), 1u);
  EXPECT_EQ(plan.subsumed(), 2u);
  EXPECT_EQ(decision(plan, "a").action, PruneAction::kLive);
  EXPECT_EQ(decision(plan, "b").subsumed_by, "a");
  EXPECT_EQ(decision(plan, "c").subsumed_by, "a");
}

TEST(PruneSubsume, MutualImplicationKeepsDeterministicSurvivor) {
  // Structurally different but propositionally equivalent formulas form a
  // mutual-implication class; the first-registered member survives.
  const auto plan = build_prune_plan(
      inputs_from("first: always (!ds || rdy) @clk_pos;\n"
                  "second: always (ds -> rdy) @clk_pos;\n"
                  "third: always (!(ds && !rdy)) @clk_pos;"),
      PruneMode::kSafe);
  EXPECT_EQ(plan.live(), 1u);
  EXPECT_EQ(decision(plan, "first").action, PruneAction::kLive);
  EXPECT_EQ(decision(plan, "second").subsumed_by, "first");
  EXPECT_EQ(decision(plan, "third").subsumed_by, "first");
}

TEST(PruneSubsume, GuardContainmentRequired) {
  // Same formula; the guarded property evaluates at a subset of the
  // unguarded one's points, so only guarded-subsumed-by-unguarded holds.
  const auto plan = build_prune_plan(
      inputs_from("narrow: always (!ds || rdy) @clk_pos && monitor_en;\n"
                  "wide: always (!ds || rdy) @clk_pos;"),
      PruneMode::kSafe);
  EXPECT_EQ(decision(plan, "wide").action, PruneAction::kLive);
  EXPECT_EQ(decision(plan, "narrow").action, PruneAction::kSubsumed);
  EXPECT_EQ(decision(plan, "narrow").subsumed_by, "wide");
}

TEST(PruneSubsume, ContextKeyMismatchBlocksSubsumption) {
  const auto plan = build_prune_plan(
      inputs_from("pos: always (!ds || rdy) @clk_pos;\n"
                  "neg: always (!ds || rdy) @clk_neg;"),
      PruneMode::kSafe);
  EXPECT_EQ(plan.live(), 2u);
  EXPECT_EQ(plan.subsumed(), 0u);
}

TEST(PruneSubsume, AtomCapForcesLiveWithDiagnostic) {
  // 6 distinct atoms with atom_cap 3: the BDD layer answers kCapped, the
  // property must stay live (never prune on an inconclusive analysis) and
  // the skip is surfaced as PRN004.
  const auto plan = build_prune_plan(
      inputs_from(
          "big: always ((a1 && a2 && a3 && a4 && a5) -> a1) @clk_pos;\n"
          "other: always ((a1 && a2 && a3 && a4 && a5) -> a1) @clk_pos;"),
      PruneMode::kSafe, /*atom_cap=*/3);
  EXPECT_EQ(plan.live(), 2u);
  EXPECT_TRUE(decision(plan, "big").capped);
  bool saw_prn004 = false;
  for (const auto& d : plan.diagnostics()) {
    if (d.code == "PRN004") saw_prn004 = true;
    EXPECT_NE(d.severity, Severity::kError) << d.code;
  }
  EXPECT_TRUE(saw_prn004);
}

// ---- Specialization -------------------------------------------------------------

TEST(PruneSpecialize, FoldsGuardImpliedAtomsAtTheAnchor) {
  const auto plan = build_prune_plan(
      inputs_from("g: always (!ds || next[2](rdy)) @clk_pos && ds;"),
      PruneMode::kSafe);
  const auto& d = decision(plan, "g");
  ASSERT_EQ(d.action, PruneAction::kLive);
  ASSERT_NE(d.specialized, nullptr);
  // ds holds at every activation, so `!ds` folds to false and the
  // disjunction collapses to the temporal obligation.
  EXPECT_EQ(psl::to_string(d.specialized), "always next[2](rdy)");
}

TEST(PruneSpecialize, LeavesAtomsBelowTemporalOperatorsAlone) {
  // The guard only holds at the activation anchor; `ds` under next[2]
  // evaluates two events later and must not be folded.
  const auto plan = build_prune_plan(
      inputs_from("g: always (next[2](ds || rdy)) @clk_pos && ds;"),
      PruneMode::kSafe);
  EXPECT_EQ(decision(plan, "g").specialized, nullptr);
}

// ---- Bundled suites -------------------------------------------------------------

TEST(PruneGolden, Des56SuiteSubsumesP7UnderP3) {
  const auto plan =
      build_prune_plan(suite_inputs(models::des56_suite()), PruneMode::kSafe);
  EXPECT_EQ(plan.elided(), 0u);
  EXPECT_EQ(plan.subsumed(), 1u);
  EXPECT_EQ(plan.live(), 8u);
  EXPECT_EQ(decision(plan, "p7").action, PruneAction::kSubsumed);
  EXPECT_EQ(decision(plan, "p7").subsumed_by, "p3");
  // The strong eventuality has no guaranteed witness: live.
  EXPECT_EQ(decision(plan, "p9").action, PruneAction::kLive);
}

TEST(PruneGolden, ColorConvSuiteSubsumesC1UnderC6) {
  const auto plan = build_prune_plan(suite_inputs(models::colorconv_suite()),
                                     PruneMode::kSafe);
  EXPECT_EQ(plan.elided(), 0u);
  EXPECT_EQ(plan.subsumed(), 1u);
  EXPECT_EQ(plan.live(), 11u);
  EXPECT_EQ(decision(plan, "c1").subsumed_by, "c6");
}

// ---- Plan structure, diagnostics, JSON ------------------------------------------

TEST(PrunePlan, OffModeKeepsEverythingLiveWithoutAnalysis) {
  const auto plan = build_prune_plan(suite_inputs(models::des56_suite()),
                                     PruneMode::kOff);
  EXPECT_EQ(plan.live(), plan.decisions.size());
  EXPECT_TRUE(plan.diagnostics().empty());
}

TEST(PrunePlan, DiagnosticsCarryPrnCodes) {
  const auto plan = build_prune_plan(
      inputs_from("t: always (rdy || !rdy) @clk_pos;\n"
                  "a: always (!ds || (rdy && !err)) @clk_pos;\n"
                  "b: always (!ds || rdy) @clk_pos;"),
      PruneMode::kSafe);
  std::map<std::string, std::string> by_code;
  for (const auto& d : plan.diagnostics()) by_code[d.code] = d.property;
  EXPECT_EQ(by_code["PRN001"], "t");
  EXPECT_EQ(by_code["PRN002"], "b");
}

TEST(PrunePlan, WriteJsonEmitsSchemaAndDecisions) {
  std::ostringstream os;
  build_prune_plan(suite_inputs(models::des56_suite()), PruneMode::kSafe)
      .write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"safe\""), std::string::npos);
  EXPECT_NE(json.find("\"live\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"subsumed\": 1"), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"p7\", \"action\": \"subsumed\", "
                      "\"subsumed_by\": \"p3\""),
            std::string::npos);
}

// ---- End-to-end verdict equivalence ---------------------------------------------

std::map<std::string, bool> verdicts(const abv::Report& report) {
  std::map<std::string, bool> out;
  for (const auto& p : report.properties()) out[p.name] = p.ok();
  return out;
}

const abv::PropertyReport* find_row(const abv::Report& report,
                                    const std::string& name) {
  for (const auto& p : report.properties()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

models::RunConfig base_config(models::Design design, models::Level level,
                              size_t jobs) {
  models::RunConfig config;
  config.design = design;
  config.level = level;
  config.checkers = 16;  // clamped to the suite size
  config.workload = 300;
  config.engine.jobs = jobs;
  return config;
}

void expect_verdict_equivalence(models::Design design, models::Level level,
                                size_t jobs) {
  models::RunConfig plain = base_config(design, level, jobs);
  models::RunConfig pruned = plain;
  pruned.analysis.prune = PruneMode::kSafe;

  const models::RunResult a = models::run_simulation(plain);
  const models::RunResult b = models::run_simulation(pruned);
  ASSERT_TRUE(a.functional_ok);
  ASSERT_TRUE(b.functional_ok);
  // Derived, never dropped: every property has a row on both sides with the
  // same verdict, and the run verdicts agree.
  EXPECT_EQ(verdicts(a.report), verdicts(b.report))
      << models::to_string(design) << "/" << models::to_string(level)
      << " jobs=" << jobs;
  EXPECT_EQ(a.report.all_ok(), b.report.all_ok());
  EXPECT_EQ(a.properties_ok, b.properties_ok);
}

TEST(PruneEquivalence, Des56VerdictsIdenticalAcrossLevelsAndJobs) {
  expect_verdict_equivalence(models::Design::kDes56, models::Level::kRtl, 1);
  expect_verdict_equivalence(models::Design::kDes56, models::Level::kTlmCa, 1);
  expect_verdict_equivalence(models::Design::kDes56, models::Level::kTlmAt, 1);
  expect_verdict_equivalence(models::Design::kDes56, models::Level::kTlmAt, 4);
}

TEST(PruneEquivalence, ColorConvVerdictsIdenticalAcrossLevelsAndJobs) {
  expect_verdict_equivalence(models::Design::kColorConv, models::Level::kRtl,
                             1);
  expect_verdict_equivalence(models::Design::kColorConv, models::Level::kTlmCa,
                             1);
  expect_verdict_equivalence(models::Design::kColorConv, models::Level::kTlmAt,
                             1);
  expect_verdict_equivalence(models::Design::kColorConv, models::Level::kTlmAt,
                             4);
}

TEST(PruneEquivalence, PrunedRunReducesLiveCheckersButKeepsAllRows) {
  models::RunConfig config =
      base_config(models::Design::kDes56, models::Level::kTlmAt, 1);
  config.analysis.prune = PruneMode::kSafe;
  const models::RunResult result = models::run_simulation(config);
  ASSERT_TRUE(result.properties_ok);
  EXPECT_EQ(result.prune_plan.subsumed(), 1u);
  const auto* p7 = find_row(result.report, "p7");
  ASSERT_NE(p7, nullptr);
  EXPECT_EQ(p7->prune, "subsumed");
  EXPECT_EQ(p7->derived_from, "p3");
  EXPECT_EQ(p7->activations, 0u);  // never spawned
  EXPECT_TRUE(p7->ok());
  // Every suite property still has a row.
  EXPECT_EQ(result.report.properties().size(),
            models::des56_suite().properties.size());
}

TEST(PruneEquivalence, AggressiveDerivedFailurePreservesRunVerdict) {
  // A contradiction injected via extra_properties fails when simulated and
  // is elided with a derived failure when pruned aggressively; the run
  // verdict must be false either way.
  models::RunConfig plain =
      base_config(models::Design::kDes56, models::Level::kTlmCa, 1);
  auto bad = psl::parse_rtl_property_file(
      "xfail: always (ds && !ds) @clk_pos;");
  ASSERT_TRUE(bad.ok());
  plain.extra_properties = bad.value();
  models::RunConfig pruned = plain;
  pruned.analysis.prune = PruneMode::kAggressive;

  const models::RunResult a = models::run_simulation(plain);
  const models::RunResult b = models::run_simulation(pruned);
  EXPECT_FALSE(a.properties_ok);
  EXPECT_FALSE(b.properties_ok);
  EXPECT_EQ(verdicts(a.report), verdicts(b.report));
  const auto* row = find_row(b.report, "xfail");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->prune, "elide");
  EXPECT_EQ(row->derived_from, "static");
  EXPECT_FALSE(row->ok());
}

TEST(PruneEquivalence, CrossCheckAuditIsCleanOnBundledSuites) {
  // analysis=error keeps pruned checkers running and cross-checks every
  // derived verdict; on the bundled suites no PRN003 may fire.
  for (const auto design :
       {models::Design::kDes56, models::Design::kColorConv}) {
    models::RunConfig config =
        base_config(design, models::Level::kTlmAt, 2);
    config.analysis = models::AnalysisMode::kError;
    config.analysis.prune = PruneMode::kSafe;
    const models::RunResult result = models::run_simulation(config);
    EXPECT_TRUE(result.analysis_ok) << models::to_string(design);
    for (const auto& d : result.analysis_diagnostics) {
      EXPECT_NE(d.code, "PRN003") << d.message;
    }
    // Audit mode spawns everything: real counters on every row.
    const auto* p7 = find_row(result.report, "p7");
    if (design == models::Design::kDes56) {
      ASSERT_NE(p7, nullptr);
      EXPECT_GT(p7->activations, 0u);
    }
  }
}

TEST(PruneEquivalence, PlanJsonWrittenWhenPathConfigured) {
  models::RunConfig config =
      base_config(models::Design::kDes56, models::Level::kTlmAt, 1);
  config.analysis.prune = PruneMode::kSafe;
  config.observability.prune_plan_path =
      ::testing::TempDir() + "/prune_plan.json";
  const models::RunResult result = models::run_simulation(config);
  ASSERT_TRUE(result.properties_ok);
  std::ifstream in(config.observability.prune_plan_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"subsumed_by\": \"p3\""), std::string::npos);
}

}  // namespace
}  // namespace repro::analysis
