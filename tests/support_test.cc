#include <gtest/gtest.h>

#include <set>

#include "support/rng.h"
#include "support/status.h"
#include "support/strutil.h"

namespace repro {
namespace {

TEST(Strutil, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strutil, SplitAndTrimDropsEmptyPieces) {
  const auto parts = split_and_trim(" a; b ;; c ;", ';');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strutil, StartsWith) {
  EXPECT_TRUE(starts_with("abcdef", "abc"));
  EXPECT_FALSE(starts_with("ab", "abc"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strutil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(Result, HoldsValueOrError) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  Result<int> bad(Error{"boom", 3});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "boom");
  EXPECT_EQ(bad.error().to_string(), "boom (at offset 3)");
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 15);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceZeroAndCertain) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0, 10));
    EXPECT_TRUE(rng.chance(10, 10));
  }
}

}  // namespace
}  // namespace repro
