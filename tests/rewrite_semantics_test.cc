// Semantic (trace-level) validation of the rewriting passes, randomized:
//
//   * NNF preserves the verdict of every formula on every trace;
//   * push_ahead_next preserves the verdict (both push modes);
//   * Algorithm III.1 preserves the verdict on clock-grid traces — the
//     paper's p == p' equivalence at RTL (Sec. III-A: "when evaluated at RTL
//     with clock context clk_pos, p and p'_1 are equivalent");
//   * on sparse traces, the substituted property can only differ in the
//     direction the paper describes (next_e fails when its instant has no
//     event).
#include <gtest/gtest.h>

#include "checker/reference_eval.h"
#include "checker/trace.h"
#include "psl/ast.h"
#include "rewrite/next_substitution.h"
#include "rewrite/nnf.h"
#include "rewrite/push_ahead.h"
#include "support/rng.h"

namespace repro::rewrite {
namespace {

using checker::Observation;
using checker::Trace;
using checker::Verdict;
using psl::ExprPtr;

// Random formula WITHOUT next_e (the rewriting passes run before
// Algorithm III.1 introduces it).
ExprPtr random_formula(Rng& rng, int depth) {
  const char* signals[] = {"a", "b", "c"};
  if (depth <= 0 || rng.chance(1, 3)) {
    switch (rng.below(3)) {
      case 0:
        return psl::sig(signals[rng.below(3)]);
      case 1:
        return psl::not_(psl::sig(signals[rng.below(3)]));
      default:
        return psl::cmp(signals[rng.below(3)], psl::CmpOp::kEq, rng.below(3));
    }
  }
  switch (rng.below(10)) {
    case 0:
      return psl::and_(random_formula(rng, depth - 1),
                       random_formula(rng, depth - 1));
    case 1:
      return psl::or_(random_formula(rng, depth - 1),
                      random_formula(rng, depth - 1));
    case 2:
      return psl::implies(random_formula(rng, depth - 1),
                          random_formula(rng, depth - 1));
    case 3:
      return psl::not_(random_formula(rng, depth - 1));
    case 4:
      return psl::next(static_cast<uint32_t>(rng.range(1, 3)),
                       random_formula(rng, depth - 1));
    case 5:
      return psl::until(random_formula(rng, depth - 1),
                        random_formula(rng, depth - 1), rng.chance(1, 2));
    case 6:
      return psl::release(random_formula(rng, depth - 1),
                          random_formula(rng, depth - 1));
    case 7:
      return psl::always(random_formula(rng, depth - 1));
    case 8:
      return psl::abort_(random_formula(rng, depth - 1),
                         psl::sig(signals[rng.below(3)]));
    default:
      return psl::eventually(random_formula(rng, depth - 1));
  }
}

Trace random_trace(Rng& rng, size_t length, bool grid) {
  Trace trace;
  psl::TimeNs time = 10;
  for (size_t i = 0; i < length; ++i) {
    Observation o;
    o.time = time;
    o.values.set("a", rng.below(3));
    o.values.set("b", rng.below(3));
    o.values.set("c", rng.below(3));
    trace.push_back(std::move(o));
    time += grid ? 10 : 10 * rng.range(1, 3);
  }
  return trace;
}

class RewriteSemantics : public ::testing::TestWithParam<int> {};

TEST_P(RewriteSemantics, NnfPreservesVerdicts) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  const ExprPtr formula = random_formula(rng, 3);
  const ExprPtr nnf = to_nnf(formula);
  const Trace trace = random_trace(rng, rng.range(2, 10), rng.chance(1, 2));
  for (bool complete : {false, true}) {
    for (size_t i = 0; i < trace.size(); ++i) {
      ASSERT_EQ(checker::reference_eval(formula, trace, i, complete),
                checker::reference_eval(nnf, trace, i, complete))
          << psl::to_string(formula) << "  ==>  " << psl::to_string(nnf)
          << " at position " << i << " complete=" << complete;
    }
  }
}

TEST_P(RewriteSemantics, PushAheadIsBoundaryMonotone) {
  // The distribution rules are exact on infinite traces; under truncated
  // semantics, a weak `next` operand pushed inside an until/release can
  // resolve leniently at the very end of the trace where the undistributed
  // original still sees its (strong) boundary — an end-of-simulation
  // artifact, not a verdict flip. We therefore require the strong property
  // that the two forms never *contradict* (one true, the other false), on
  // both complete and ongoing traces.
  Rng rng(static_cast<uint64_t>(GetParam()) * 65537 + 11);
  const ExprPtr nnf = to_nnf(random_formula(rng, 3));
  const Trace trace = random_trace(rng, rng.range(2, 10), rng.chance(1, 2));
  for (PushMode mode :
       {PushMode::kDistributeThroughFixpoints, PushMode::kOpaqueFixpoints}) {
    const ExprPtr pushed = push_ahead_next(nnf, mode);
    for (bool complete : {false, true}) {
      for (size_t i = 0; i < trace.size(); ++i) {
        const Verdict a = checker::reference_eval(nnf, trace, i, complete);
        const Verdict b = checker::reference_eval(pushed, trace, i, complete);
        // In NNF every next occurs positively, so the boundary leniency is
        // monotone: the pushed form may be true where the original already
        // failed at the boundary, never the reverse.
        ASSERT_FALSE(a == Verdict::kTrue && b == Verdict::kFalse)
            << psl::to_string(nnf) << "  ==>  " << psl::to_string(pushed)
            << " at position " << i << " complete=" << complete;
      }
    }
  }
}

TEST_P(RewriteSemantics, PushAheadExactAwayFromTheBoundary) {
  // Away from the trace end (all next windows inside the trace), the
  // distribution is exact. Double the trace and compare on the first half.
  Rng rng(static_cast<uint64_t>(GetParam()) * 48611 + 3);
  const ExprPtr nnf = to_nnf(random_formula(rng, 2));
  const uint32_t depth = psl::max_next_depth(nnf);
  const size_t half = rng.range(3, 8);
  const Trace trace = random_trace(rng, 2 * (half + depth), rng.chance(1, 2));
  for (PushMode mode :
       {PushMode::kDistributeThroughFixpoints, PushMode::kOpaqueFixpoints}) {
    const ExprPtr pushed = push_ahead_next(nnf, mode);
    for (size_t i = 0; i < half; ++i) {
      const Verdict a = checker::reference_eval(nnf, trace, i, /*complete=*/false);
      const Verdict b =
          checker::reference_eval(pushed, trace, i, /*complete=*/false);
      if (a != Verdict::kPending && b != Verdict::kPending) {
        ASSERT_EQ(a, b) << psl::to_string(nnf) << "  ==>  "
                        << psl::to_string(pushed) << " at position " << i;
      }
    }
  }
}

TEST_P(RewriteSemantics, AlgorithmIII1PreservesVerdictsOnClockGrid) {
  // The paper's Sec. III-A equivalence: with a 10 ns clock, next[n] and
  // next_e[tau, n*10] coincide on a cycle-accurate (grid) trace.
  Rng rng(static_cast<uint64_t>(GetParam()) * 104009 + 23);
  const ExprPtr pushed =
      push_ahead_next(to_nnf(random_formula(rng, 3)), PushMode::kOpaqueFixpoints);
  const ExprPtr substituted = substitute_next(pushed, 10);
  const Trace trace = random_trace(rng, rng.range(2, 12), /*grid=*/true);
  for (size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(checker::reference_eval(pushed, trace, i, /*complete=*/true),
              checker::reference_eval(substituted, trace, i, /*complete=*/true))
        << psl::to_string(pushed) << "  ==>  " << psl::to_string(substituted)
        << " at position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RewriteSemantics, ::testing::Range(0, 200));

}  // namespace
}  // namespace repro::rewrite
