// Tests for the runtime observability layer: the metrics registry, the
// Chrome trace-event sink, failure witnesses, the machine-readable report
// and the bundled JSON reader they are all validated with.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "abv/eval_engine.h"
#include "abv/report.h"
#include "checker/checker.h"
#include "checker/trace.h"
#include "checker/wrapper.h"
#include "models/testbench.h"
#include "psl/parser.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/trace_sink.h"
#include "tlm/transaction.h"

namespace repro {
namespace {

// ---- Histogram -------------------------------------------------------------------

TEST(Histogram, ExponentialBounds) {
  const std::vector<uint64_t> bounds = support::exponential_bounds(10, 3);
  EXPECT_EQ(bounds, (std::vector<uint64_t>{10, 20, 40}));
}

TEST(Histogram, RecordsIntoInclusiveUpperBuckets) {
  support::Histogram h(support::exponential_bounds(10, 3));  // 10, 20, 40
  h.record(5);     // <= 10
  h.record(10);    // <= 10 (inclusive upper edge)
  h.record(11);    // <= 20
  h.record(40);    // <= 40
  h.record(1000);  // overflow
  EXPECT_EQ(h.counts(), (std::vector<uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.sum(), 5u + 10 + 11 + 40 + 1000);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(Histogram, MergeAddsCountsAndAdoptsBoundsWhenEmpty) {
  support::Histogram a(support::exponential_bounds(10, 2));
  support::Histogram b(support::exponential_bounds(10, 2));
  a.record(5);
  b.record(15);
  b.record(100);
  a.merge(b);
  EXPECT_EQ(a.counts(), (std::vector<uint64_t>{1, 1, 1}));
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.max(), 100u);

  support::Histogram empty;
  empty.merge(a);  // adopts a's bounds and counts
  EXPECT_EQ(empty.bounds(), a.bounds());
  EXPECT_EQ(empty.total(), 3u);
}

// ---- MetricsRegistry -------------------------------------------------------------

TEST(Metrics, CounterSumsLanesAndGaugeTakesPeak) {
  support::MetricsRegistry registry(3);
  support::MetricsRegistry::Counter& c = registry.counter("c");
  support::MetricsRegistry::Gauge& g = registry.gauge("g");
  c.add(0, 5);
  c.add(1, 7);
  c.add(2, 1);
  g.set(0, 3);
  g.set(1, 9);
  g.set(1, 2);  // peak keeps 9
  EXPECT_EQ(c.total(), 13u);
  EXPECT_EQ(g.max(), 9u);

  const support::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("c"), 13u);
  EXPECT_EQ(snap.gauges.at("g"), 9u);
}

TEST(Metrics, ConcurrentLaneWritesAreExact) {
  constexpr size_t kLanes = 4;
  constexpr uint64_t kPerLane = 20000;
  support::MetricsRegistry registry(kLanes);
  support::MetricsRegistry::Counter& c = registry.counter("hits");
  support::MetricsRegistry::Gauge& g = registry.gauge("depth");
  std::vector<std::thread> threads;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    threads.emplace_back([&, lane] {
      for (uint64_t i = 1; i <= kPerLane; ++i) {
        c.add(lane, 1);
        g.set(lane, i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.total(), kPerLane * kLanes);
  EXPECT_EQ(g.max(), kPerLane);
}

TEST(Metrics, SnapshotJsonIsDeterministic) {
  auto build = [] {
    support::MetricsRegistry registry(2);
    registry.counter("b").add(1, 2);
    registry.counter("a").add(0, 1);
    registry.gauge("z").set(0, 4);
    support::Histogram h(support::exponential_bounds(10, 2));
    h.record(15);
    registry.merge_histogram("lat", h);
    std::ostringstream os;
    registry.snapshot().write_json(os);
    return os.str();
  };
  const std::string once = build();
  EXPECT_EQ(once, build());
  // Keys are sorted by name regardless of registration order.
  EXPECT_LT(once.find("\"a\""), once.find("\"b\""));
  std::string error;
  ASSERT_TRUE(support::json::parse(once, &error).has_value()) << error;
}

// ---- Witness ring ----------------------------------------------------------------

psl::TlmProperty tlm_prop(const std::string& text) {
  auto result = psl::parse_tlm_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

checker::MapContext des_values(bool ds, bool rdy) {
  checker::MapContext values;
  values.set("ds", ds ? 1 : 0);
  values.set("rdy", rdy ? 1 : 0);
  return values;
}

TEST(Witness, RingWrapsAroundAndSnapshotsOldestFirst) {
  // rdy must rise within 40 ns of ds; it never does, so the session fails
  // and the failure carries the last `depth` transactions.
  const psl::TlmProperty p = tlm_prop("w: always (!ds || next_e[1,40](rdy)) @Tb");
  checker::TlmCheckerWrapper wrapper(p, 10);
  wrapper.set_witness_depth(3);
  wrapper.on_transaction(10, des_values(true, false));
  for (psl::TimeNs t : {20, 30, 40, 50, 60}) {
    wrapper.on_transaction(t, des_values(false, false));
  }
  wrapper.finish();
  ASSERT_GT(wrapper.stats().failures, 0u);
  ASSERT_FALSE(wrapper.failures().empty());
  const checker::Failure& failure = wrapper.failures().front();
  ASSERT_EQ(failure.witness.size(), 3u);  // ring capped at depth 3
  // Oldest first, ending at the failure's transaction.
  EXPECT_LT(failure.witness[0].time, failure.witness[1].time);
  EXPECT_LT(failure.witness[1].time, failure.witness[2].time);
  EXPECT_EQ(failure.witness.back().time, failure.time);
  ASSERT_NE(failure.witness[0].observables, nullptr);
  // MapContext materializes every observable into the snapshot.
  EXPECT_EQ(failure.witness[0].observables->size(), 2u);
}

TEST(Witness, DepthZeroDisablesCapture) {
  const psl::TlmProperty p = tlm_prop("w: always (!ds || next_e[1,40](rdy)) @Tb");
  checker::TlmCheckerWrapper wrapper(p, 10);
  wrapper.set_witness_depth(0);
  wrapper.on_transaction(10, des_values(true, false));
  for (psl::TimeNs t : {20, 30, 40, 50, 60}) {
    wrapper.on_transaction(t, des_values(false, false));
  }
  wrapper.finish();
  ASSERT_GT(wrapper.stats().failures, 0u);
  ASSERT_FALSE(wrapper.failures().empty());
  EXPECT_TRUE(wrapper.failures().front().witness.empty());
}

TEST(Witness, PartialRingBeforeWraparound) {
  // Only two transactions before the verdict: the ring holds both.
  const psl::TlmProperty p = tlm_prop("w: always (!ds || next_e[1,20](rdy)) @Tb");
  checker::TlmCheckerWrapper wrapper(p, 10);
  wrapper.set_witness_depth(8);
  wrapper.on_transaction(10, des_values(true, false));
  wrapper.on_transaction(30, des_values(false, false));
  wrapper.finish();
  ASSERT_FALSE(wrapper.failures().empty());
  EXPECT_EQ(wrapper.failures().front().witness.size(), 2u);
  EXPECT_EQ(wrapper.failures().front().witness[0].time, 10u);
}

// ---- TraceSink -------------------------------------------------------------------

TEST(TraceSink, WritesParseableChromeTraceJson) {
  support::TraceSink sink;
  sink.name_thread(0, "dispatch");
  sink.name_thread(1, "shard-0");
  const uint64_t t0 = sink.now_ns();
  sink.span(1, "shard_batch", t0, 1500, {{"records", 16}});
  sink.span_end(0, "batch_dispatch", t0, {{"records", 16}, {"shards", 1}});
  sink.instant(1, "fail:p1", {{"sim_time_ns", 170}});
  EXPECT_EQ(sink.events(), 5u);

  std::ostringstream os;
  sink.write(os);
  std::string error;
  const auto doc = support::json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const support::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 5u);
  size_t spans = 0, instants = 0, metadata = 0;
  for (const support::json::Value& e : events->array) {
    const support::json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    if (ph->string == "X") {
      ++spans;
      ASSERT_NE(e.find("dur"), nullptr);
      ASSERT_NE(e.find("ts"), nullptr);
    } else if (ph->string == "i") {
      ++instants;
      ASSERT_NE(e.find("s"), nullptr);
      EXPECT_EQ(e.find("s")->string, "t");
    } else if (ph->string == "M") {
      ++metadata;
      EXPECT_EQ(e.find("name")->string, "thread_name");
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_EQ(metadata, 2u);
}

tlm::TransactionRecord obs_record(sim::Time end, uint64_t ds, uint64_t rdy) {
  static auto keys =
      std::make_shared<tlm::Snapshot::Keys>(tlm::Snapshot::Keys{"ds", "rdy"});
  tlm::TransactionRecord record;
  record.end = end;
  record.observables = tlm::Snapshot(keys);
  record.observables.set("ds", ds);
  record.observables.set("rdy", rdy);
  return record;
}

TEST(TraceSink, EngineEmitsOneLanePerShardWithCausalSpans) {
  support::TraceSink sink;
  support::MetricsRegistry metrics(4);  // producer lane + 3 shard lanes
  abv::EvalEngine::Options options;
  options.config.jobs = 3;
  options.config.batch_size = 8;
  options.trace = &sink;
  options.metrics = &metrics;
  abv::EvalEngine engine(options);
  std::vector<std::unique_ptr<checker::TlmCheckerWrapper>> wrappers;
  for (const char* text :
       {"a: always (!ds || next_e[1,40](rdy)) @Tb",
        "b: always (!ds || next_e[1,80](rdy)) @Tb",
        "c: always (!ds || next_e[1,40](rdy)) @Tb"}) {
    wrappers.push_back(
        std::make_unique<checker::TlmCheckerWrapper>(tlm_prop(text), 10));
    engine.add(wrappers.back().get());
  }
  sim::Time t = 10;
  for (int i = 0; i < 40; ++i) {
    engine.on_record(obs_record(t, i % 4 == 0 ? 1 : 0, 0));  // rdy never rises
    t += 50;  // always past the next_e window: every activation fails
  }
  engine.finish();

  std::ostringstream os;
  sink.write(os);
  std::string error;
  const auto doc = support::json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const support::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::map<int, std::vector<std::pair<double, double>>> spans_by_tid;
  std::map<uint64_t, double> fill_end_by_seq;            // producer lane
  std::vector<std::pair<uint64_t, double>> shard_starts; // (seq, ts)
  size_t failures = 0;
  for (const support::json::Value& e : events->array) {
    const std::string& ph = e.find("ph")->string;
    const int tid = static_cast<int>(e.find("tid")->number);
    if (ph == "X") {
      const double ts = e.find("ts")->number;
      const double dur = e.find("dur")->number;
      spans_by_tid[tid].emplace_back(ts, dur);
      const std::string& name = e.find("name")->string;
      const support::json::Value* args = e.find("args");
      if (name == "batch_fill") {
        EXPECT_EQ(tid, 0) << "batch_fill must live on the producer lane";
        ASSERT_NE(args, nullptr);
        fill_end_by_seq[static_cast<uint64_t>(args->find("seq")->number)] =
            ts + dur;
      } else if (name == "shard_batch") {
        EXPECT_TRUE(tid >= 1 && tid <= 3) << "tid " << tid;
        ASSERT_NE(args, nullptr);
        shard_starts.emplace_back(
            static_cast<uint64_t>(args->find("seq")->number), ts);
      }
    } else if (ph == "i") {
      EXPECT_EQ(tid == 1 || tid == 2 || tid == 3, true);
      EXPECT_EQ(e.find("name")->string.rfind("fail:", 0), 0u);
      ++failures;
    }
  }
  EXPECT_GT(failures, 0u);
  // One producer lane plus one lane per shard, each with at least one span.
  for (int tid : {0, 1, 2, 3}) {
    ASSERT_FALSE(spans_by_tid[tid].empty()) << "tid " << tid;
  }
  // Spans within one lane never overlap: each lane's batches are sequential.
  for (auto& [tid, spans] : spans_by_tid) {
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].first + spans[i - 1].second - 1e-6)
          << "tid " << tid;
    }
  }
  // Pipelined causality: shard work on batch k cannot start before the
  // producer finished filling batch k (seal happens at fill-span end). Under
  // pipelining shard spans of batch k may well overlap the *fill* of batch
  // k+1, so nesting is not required — only this per-seq ordering.
  EXPECT_FALSE(fill_end_by_seq.empty());
  EXPECT_FALSE(shard_starts.empty());
  for (const auto& [seq, ts] : shard_starts) {
    auto it = fill_end_by_seq.find(seq);
    ASSERT_NE(it, fill_end_by_seq.end()) << "shard span with unknown seq " << seq;
    EXPECT_GE(ts, it->second - 1e-6)
        << "shard span for seq " << seq << " started before its fill ended";
  }
}

// ---- Metrics through a full simulation -------------------------------------------

TEST(MetricsDeterminism, DeterministicKeysAgreeAcrossJobs) {
  auto run = [](size_t jobs) {
    models::RunConfig config;
    config.design = models::Design::kDes56;
    config.level = models::Level::kTlmAt;
    config.workload = 40;
    config.checkers = 99;  // whole suite
    config.engine.jobs = jobs;
    config.engine.batch_size = 16;
    return models::run_simulation(config);
  };
  const models::RunResult base = run(1);
  ASSERT_TRUE(base.functional_ok);
  EXPECT_GT(base.metrics.counters.at("engine.records"), 0u);
  EXPECT_FALSE(base.metrics.histograms.at("wrapper.latency_ns").empty());
  for (size_t jobs : {2, 4}) {
    const models::RunResult r = run(jobs);
    // Counters and gauges fed by simulation state (not wall time) and the
    // sim-time latency histogram must be identical for any worker count.
    EXPECT_EQ(r.metrics.counters.at("engine.records"),
              base.metrics.counters.at("engine.records"))
        << jobs;
    for (const char* key : {"sim.kernel_events", "sim.delta_cycles",
                            "sim.transactions", "wrapper.pool_capacity",
                            "wrapper.table_peak"}) {
      EXPECT_EQ(r.metrics.gauges.at(key), base.metrics.gauges.at(key))
          << key << " jobs=" << jobs;
    }
    const support::Histogram& ha = base.metrics.histograms.at("wrapper.latency_ns");
    const support::Histogram& hb = r.metrics.histograms.at("wrapper.latency_ns");
    EXPECT_EQ(ha.bounds(), hb.bounds()) << jobs;
    EXPECT_EQ(ha.counts(), hb.counts()) << jobs;
    EXPECT_EQ(ha.sum(), hb.sum()) << jobs;
    EXPECT_EQ(ha.max(), hb.max()) << jobs;
  }
}

// ---- Report: totals, diff, JSON --------------------------------------------------

psl::RtlProperty rtl_prop(const std::string& text) {
  auto result = psl::parse_rtl_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return std::move(result).take();
}

TEST(Report, PrintSizesColumnsToLongNamesAndAddsTotals) {
  const psl::RtlProperty p = rtl_prop(
      "a_property_with_a_very_long_descriptive_name: always (!ds || rdy) @clk_pos");
  checker::PropertyChecker checker(p.name, p.formula, p.context.guard);
  abv::Report report;
  report.add(checker);
  std::ostringstream os;
  report.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("a_property_with_a_very_long_descriptive_name"),
            std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
  // Every row (header, property, rule, totals) is aligned to the same width.
  std::istringstream lines(text);
  std::string line;
  std::vector<size_t> lengths;
  while (std::getline(lines, line)) lengths.push_back(line.size());
  ASSERT_EQ(lengths.size(), 4u);
  EXPECT_EQ(lengths[0], lengths[1]);
  EXPECT_EQ(lengths[2], lengths[3]);
}

TEST(Report, DiffIsEmptyForIdenticalRunsAndSignedOtherwise) {
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kTlmAt;
  config.workload = 20;
  config.checkers = 99;
  const models::RunResult a = models::run_simulation(config);
  const models::RunResult a2 = models::run_simulation(config);
  EXPECT_TRUE(a.report.diff(a2.report).empty());

  config.workload = 30;
  const models::RunResult b = models::run_simulation(config);
  const std::vector<abv::PropertyDelta> deltas = a.report.diff(b.report);
  ASSERT_FALSE(deltas.empty());
  // More workload means more events: deltas are positive in this direction
  // and negative in the other.
  EXPECT_GT(deltas.front().events, 0);
  const std::vector<abv::PropertyDelta> reverse = b.report.diff(a.report);
  ASSERT_EQ(reverse.size(), deltas.size());
  EXPECT_EQ(reverse.front().events, -deltas.front().events);
  EXPECT_NE(deltas.front().to_string().find(deltas.front().name),
            std::string::npos);
}

TEST(Report, DiffReportsPropertiesMissingFromOneSide) {
  const psl::RtlProperty p = rtl_prop("only_a: always (rdy) @clk_pos");
  checker::PropertyChecker checker(p.name, p.formula, p.context.guard);
  checker::MapContext values;
  values.set("rdy", 1);
  checker.on_event(10, values);
  checker.finish();
  abv::Report with;
  with.add(checker);
  abv::Report empty;
  const std::vector<abv::PropertyDelta> gained = empty.diff(with);
  ASSERT_EQ(gained.size(), 1u);
  EXPECT_EQ(gained[0].name, "only_a");
  EXPECT_GT(gained[0].events, 0);
  const std::vector<abv::PropertyDelta> lost = with.diff(empty);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].events, -gained[0].events);
}

models::RunResult witness_run(size_t jobs) {
  models::RunConfig config;
  config.design = models::Design::kDes56;
  config.level = models::Level::kTlmAt;
  config.workload = 30;
  config.checkers = 99;
  config.engine.jobs = jobs;
  // Deliberately failing property: rdy rises 17 cycles after ds, not 1.
  config.extra_properties.push_back(
      rtl_prop("wfail: always (!ds || next[1](rdy)) @clk_pos"));
  return models::run_simulation(config);
}

TEST(ReportJson, SchemaAndFailureWitnesses) {
  const models::RunResult r = witness_run(1);
  std::ostringstream os;
  r.report.write_json(os);
  std::string error;
  const auto doc = support::json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->is_object());
  ASSERT_NE(doc->find("schema_version"), nullptr);
  EXPECT_EQ(doc->find("schema_version")->number, 2.0);
  ASSERT_NE(doc->find("coverage"), nullptr);  // the v2 addition
  ASSERT_NE(doc->find("all_ok"), nullptr);
  EXPECT_FALSE(doc->find("all_ok")->boolean);
  ASSERT_NE(doc->find("totals"), nullptr);
  EXPECT_GT(doc->find("totals")->find("failures")->number, 0.0);
  EXPECT_EQ(doc->find("timing"), nullptr);  // omitted without ReportTiming

  const support::json::Value* properties = doc->find("properties");
  ASSERT_NE(properties, nullptr);
  const support::json::Value* wfail = nullptr;
  for (const support::json::Value& p : properties->array) {
    for (const char* key :
         {"name", "events", "activations", "holds", "failures", "uncompleted",
          "steps", "failure_log"}) {
      ASSERT_NE(p.find(key), nullptr) << key;
    }
    if (p.find("name")->string == "wfail") wfail = &p;
  }
  ASSERT_NE(wfail, nullptr);
  EXPECT_GT(wfail->find("failures")->number, 0.0);
  const support::json::Value& log = *wfail->find("failure_log");
  ASSERT_FALSE(log.array.empty());
  const support::json::Value& first = log.array.front();
  ASSERT_NE(first.find("time_ns"), nullptr);
  const support::json::Value* witness = first.find("witness");
  ASSERT_NE(witness, nullptr);
  ASSERT_FALSE(witness->array.empty());
  const support::json::Value& entry = witness->array.front();
  ASSERT_NE(entry.find("time_ns"), nullptr);
  ASSERT_NE(entry.find("observables"), nullptr);
  EXPECT_FALSE(entry.find("observables")->object.empty());
}

TEST(ReportJson, ByteIdenticalAcrossJobsWithoutTiming) {
  auto render = [](const models::RunResult& r) {
    std::ostringstream os;
    r.report.write_json(os);
    return os.str();
  };
  const std::string serial = render(witness_run(1));
  EXPECT_EQ(serial, render(witness_run(4)));
  EXPECT_EQ(serial, render(witness_run(2)));
}

TEST(ReportJson, TimingSectionCarriesMetrics) {
  const models::RunResult r = witness_run(2);
  abv::ReportTiming timing;
  timing.wall_seconds = r.wall_seconds;
  timing.jobs = 2;
  timing.records = r.transactions;
  timing.metrics = r.metrics;
  std::ostringstream os;
  r.report.write_json(os, &timing);
  std::string error;
  const auto doc = support::json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const support::json::Value* t = doc->find("timing");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->find("jobs")->number, 2.0);
  ASSERT_NE(t->find("records_per_sec"), nullptr);
  const support::json::Value* metrics = t->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("counters"), nullptr);
  ASSERT_NE(metrics->find("counters")->find("engine.records"), nullptr);
}

// ---- JSON reader -----------------------------------------------------------------

TEST(Json, ParsesScalarsArraysAndObjects) {
  const auto doc = support::json::parse(
      R"({"a": 1.5, "b": [true, false, null], "c": {"nested": "x\n\"y\""}, "d": -3e2})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("a")->number, 1.5);
  ASSERT_EQ(doc->find("b")->array.size(), 3u);
  EXPECT_TRUE(doc->find("b")->array[0].boolean);
  EXPECT_EQ(doc->find("b")->array[2].kind, support::json::Value::Kind::kNull);
  EXPECT_EQ(doc->find("c")->find("nested")->string, "x\n\"y\"");
  EXPECT_EQ(doc->find("d")->number, -300.0);
}

TEST(Json, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(support::json::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(support::json::parse("[1,]").has_value());
  EXPECT_FALSE(support::json::parse("{} trailing").has_value());
  EXPECT_FALSE(support::json::parse("\"unterminated").has_value());
}

TEST(Json, FindOnNonObjectReturnsNull) {
  const auto doc = support::json::parse("[1, 2]");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("x"), nullptr);
}

TEST(Json, DecodesUnicodeEscapes) {
  const auto doc = support::json::parse(R"({"s": "A\u0041\u00e9\u20ac"})");
  ASSERT_TRUE(doc.has_value());
  // A, A, e-acute (2-byte UTF-8), euro sign (3-byte UTF-8).
  EXPECT_EQ(doc->find("s")->string, "AA\xC3\xA9\xE2\x82\xAC");
}

TEST(Json, RejectsNonHexUnicodeEscape) {
  // Regression: strtoul used to stop at the first non-hex digit and decode
  // \uZZZZ to 0, i.e. an embedded NUL in the parsed string.
  std::string error;
  EXPECT_FALSE(support::json::parse(R"({"s": "\uZZZZ"})", &error).has_value());
  EXPECT_NE(error.find("hex"), std::string::npos) << error;
  EXPECT_FALSE(support::json::parse(R"({"s": "\u12G4"})").has_value());
  EXPECT_FALSE(support::json::parse(R"({"s": "\u123"})").has_value());
}

TEST(Json, DecodesSurrogatePairsToUtf8) {
  // The escaped pair D83D/DE00 is U+1F600, which is 4-byte UTF-8.
  const auto doc = support::json::parse(R"({"s": "\uD83D\uDE00"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("s")->string, "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsLoneSurrogates) {
  std::string error;
  EXPECT_FALSE(support::json::parse(R"({"s": "\uD83D"})", &error).has_value());
  EXPECT_NE(error.find("surrogate"), std::string::npos) << error;
  EXPECT_FALSE(support::json::parse(R"({"s": "\uD83Dx"})").has_value());
  EXPECT_FALSE(support::json::parse(R"({"s": "\uDE00"})").has_value());
  EXPECT_FALSE(support::json::parse(R"({"s": "\uD83DA"})").has_value());
}

}  // namespace
}  // namespace repro
