#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/signal.h"
#include "sim/trace.h"

namespace repro::sim {
namespace {

TEST(Kernel, RunsTimedEventsInOrder) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(30, [&] { order.push_back(3); });
  kernel.schedule_at(10, [&] { order.push_back(1); });
  kernel.schedule_at(20, [&] { order.push_back(2); });
  kernel.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.now(), 30u);
}

TEST(Kernel, FifoWithinTimestamp) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(10, [&] { order.push_back(1); });
  kernel.schedule_at(10, [&] { order.push_back(2); });
  kernel.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Kernel, RunStopsAtLimit) {
  Kernel kernel;
  int hits = 0;
  kernel.schedule_at(10, [&] { ++hits; });
  kernel.schedule_at(20, [&] { ++hits; });
  kernel.schedule_at(30, [&] { ++hits; });
  kernel.run(20);
  EXPECT_EQ(hits, 2);
  kernel.run(100);
  EXPECT_EQ(hits, 3);
}

TEST(Kernel, StopEndsSimulation) {
  Kernel kernel;
  int hits = 0;
  kernel.schedule_at(10, [&] {
    ++hits;
    kernel.stop();
  });
  kernel.schedule_at(20, [&] { ++hits; });
  kernel.run_all();
  EXPECT_EQ(hits, 1);
  kernel.run_all();  // resumes after stop
  EXPECT_EQ(hits, 2);
}

TEST(Kernel, EventsScheduledAtCurrentTimeRunInSameTimestamp) {
  Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(10, [&] {
    order.push_back(1);
    kernel.schedule_at(10, [&] { order.push_back(2); });
  });
  kernel.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(kernel.now(), 10u);
}

TEST(Signal, WriteCommitsInUpdatePhase) {
  Kernel kernel;
  Signal<int> s(kernel, "s", 0);
  int observed_during_evaluate = -1;
  kernel.schedule_at(5, [&] {
    s.write(42);
    observed_during_evaluate = s.read();  // old value: not yet committed
  });
  kernel.run_all();
  EXPECT_EQ(observed_during_evaluate, 0);
  EXPECT_EQ(s.read(), 42);
}

TEST(Signal, LastWriteInDeltaWins) {
  Kernel kernel;
  Signal<int> s(kernel, "s", 0);
  kernel.schedule_at(5, [&] {
    s.write(1);
    s.write(2);
  });
  kernel.run_all();
  EXPECT_EQ(s.read(), 2);
}

TEST(Signal, WatcherRunsAfterCommit) {
  Kernel kernel;
  Signal<int> s(kernel, "s", 0);
  int seen = -1;
  s.on_change([&] { seen = s.read(); });
  kernel.schedule_at(5, [&] { s.write(9); });
  kernel.run_all();
  EXPECT_EQ(seen, 9);
}

TEST(Signal, NoNotificationOnSameValueWrite) {
  Kernel kernel;
  Signal<int> s(kernel, "s", 7);
  int notifications = 0;
  s.on_change([&] { ++notifications; });
  kernel.schedule_at(5, [&] { s.write(7); });
  kernel.run_all();
  EXPECT_EQ(notifications, 0);
}

TEST(Signal, CascadedWatchersUseDeltas) {
  Kernel kernel;
  Signal<int> a(kernel, "a", 0);
  Signal<int> b(kernel, "b", 0);
  a.on_change([&] { b.write(a.read() + 1); });
  int b_seen = -1;
  b.on_change([&] { b_seen = b.read(); });
  kernel.schedule_at(5, [&] { a.write(10); });
  kernel.run_all();
  EXPECT_EQ(b.read(), 11);
  EXPECT_EQ(b_seen, 11);
  EXPECT_EQ(kernel.now(), 5u);  // all within one timestamp
}

TEST(Clock, GeneratesPeriodicRisingEdges) {
  Kernel kernel;
  Clock clock(kernel, "clk", 10, 0);
  std::vector<Time> edges;
  clock.on_posedge([&] { edges.push_back(kernel.now()); });
  kernel.run(35);
  EXPECT_EQ(edges, (std::vector<Time>{0, 10, 20, 30}));
  EXPECT_EQ(clock.cycles(), 4u);
}

TEST(Clock, NegedgeFallsMidPeriod) {
  Kernel kernel;
  Clock clock(kernel, "clk", 10, 0);
  std::vector<Time> falls;
  clock.on_negedge([&] { falls.push_back(kernel.now()); });
  kernel.run(25);
  EXPECT_EQ(falls, (std::vector<Time>{5, 15, 25}));
}

TEST(Clock, PosedgeCallbacksShareTheEvaluatePhase) {
  // A signal written by the first posedge callback must not be visible to
  // the second one in the same edge (register semantics).
  Kernel kernel;
  Signal<int> s(kernel, "s", 0);
  Clock clock(kernel, "clk", 10, 0);
  int second_saw = -1;
  clock.on_posedge([&] { s.write(static_cast<int>(kernel.now())); });
  clock.on_posedge([&] { second_saw = s.read(); });
  kernel.run(10);  // edges at 0 and 10
  EXPECT_EQ(second_saw, 0);  // at edge 10, sees value committed at edge 0
}

TEST(ChangeLog, RecordsCommittedChangesWithTime) {
  Kernel kernel;
  Signal<uint64_t> s(kernel, "data", 1);
  ChangeLog log(kernel);
  log.watch(s);
  kernel.schedule_at(10, [&] { s.write(2); });
  kernel.schedule_at(20, [&] { s.write(2); });  // no change
  kernel.schedule_at(30, [&] { s.write(3); });
  kernel.run_all();
  const auto changes = log.for_signal("data");
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0], (Change{0, "data", 1}));
  EXPECT_EQ(changes[1], (Change{10, "data", 2}));
  EXPECT_EQ(changes[2], (Change{30, "data", 3}));
}

TEST(ChangeLog, ExplicitRecordCollapsesRepeats) {
  Kernel kernel;
  ChangeLog log(kernel);
  log.record(5, "x", 1);
  log.record(10, "x", 1);  // collapsed
  log.record(15, "x", 0);
  EXPECT_EQ(log.for_signal("x").size(), 2u);
}

TEST(ChangeLog, DumpIsHumanReadable) {
  Kernel kernel;
  ChangeLog log(kernel);
  log.record(5, "x", 1);
  std::ostringstream os;
  log.dump(os);
  EXPECT_EQ(os.str(), "5 ns  x = 1\n");
}

TEST(Kernel, CountsEventsAndDeltas) {
  Kernel kernel;
  Signal<int> s(kernel, "s", 0);
  s.on_change([] {});
  kernel.schedule_at(5, [&] { s.write(1); });
  kernel.run_all();
  EXPECT_GE(kernel.events_executed(), 2u);  // writer + watcher
  EXPECT_GE(kernel.delta_cycles(), 2u);
}

}  // namespace
}  // namespace repro::sim
