// Tests for the tooling layer: CSV trace I/O, the VCD writer, and the JSON
// report contract of the psl_lint analysis driver.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/driver.h"
#include "checker/trace_io.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/signal.h"
#include "sim/vcd.h"
#include "support/json.h"

namespace repro {
namespace {

// ---- Trace CSV ----------------------------------------------------------------

TEST(TraceIo, ParsesWellFormedTrace) {
  auto trace = checker::parse_trace_csv(
      "time,ds,out\n"
      "10,1,0\n"
      "# comment line\n"
      "20,0,0x2A\n");
  ASSERT_TRUE(trace.ok()) << trace.error().to_string();
  ASSERT_EQ(trace.value().size(), 2u);
  EXPECT_EQ(trace.value()[0].time, 10u);
  EXPECT_EQ(trace.value()[0].values.value("ds"), 1u);
  EXPECT_EQ(trace.value()[1].time, 20u);
  EXPECT_EQ(trace.value()[1].values.value("out"), 42u);
}

TEST(TraceIo, RejectsBadHeader) {
  EXPECT_FALSE(checker::parse_trace_csv("ds,out\n10,1,0\n").ok());
  EXPECT_FALSE(checker::parse_trace_csv("time\n10\n").ok());
  EXPECT_FALSE(checker::parse_trace_csv("").ok());
}

TEST(TraceIo, RejectsWrongArity) {
  EXPECT_FALSE(checker::parse_trace_csv("time,a\n10,1,2\n").ok());
  EXPECT_FALSE(checker::parse_trace_csv("time,a,b\n10,1\n").ok());
}

TEST(TraceIo, RejectsNonIncreasingTime) {
  EXPECT_FALSE(checker::parse_trace_csv("time,a\n10,1\n10,0\n").ok());
  EXPECT_FALSE(checker::parse_trace_csv("time,a\n20,1\n10,0\n").ok());
}

TEST(TraceIo, RejectsMalformedValues) {
  EXPECT_FALSE(checker::parse_trace_csv("time,a\nten,1\n").ok());
  EXPECT_FALSE(checker::parse_trace_csv("time,a\n10,0xZZ\n").ok());
}

TEST(TraceIo, RoundTrips) {
  const char* text =
      "time,a,b\n"
      "10,1,100\n"
      "25,0,200\n";
  auto first = checker::parse_trace_csv(text);
  ASSERT_TRUE(first.ok());
  const std::string serialized = checker::to_csv(first.value());
  auto second = checker::parse_trace_csv(serialized);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().size(), 2u);
  EXPECT_EQ(second.value()[1].time, 25u);
  EXPECT_EQ(second.value()[1].values.value("b"), 200u);
}

// ---- psl_lint JSON report -------------------------------------------------------

// The analysis report psl_lint emits with --json (per unit) must round-trip
// through the in-repo JSON reader, with the documented schema fields. This
// builds the same Driver configuration psl_lint uses for `--suite des56`.
// The exit-code contract of the binary itself (0 on clean suites incl.
// --Werror-analysis, non-zero on a seeded defect) is covered by the ctest
// entries in tools/CMakeLists.txt.
TEST(PslLintAnalysisJson, SuiteReportRoundTripsThroughJsonReader) {
  const models::PropertySuite suite = models::des56_suite();
  analysis::AnalysisOptions options;
  options.abstraction.clock_period_ns = suite.clock_period_ns;
  options.abstraction.abstracted_signals = suite.abstracted_signals;
  options.rtl_observables =
      models::level_observables(models::Design::kDes56, models::Level::kRtl);
  options.tlm_observables =
      models::level_observables(models::Design::kDes56, models::Level::kTlmAt);
  analysis::Driver driver(options);
  for (const psl::RtlProperty& p : suite.properties) driver.analyze(p);

  std::ostringstream os;
  driver.write_json(os);
  std::string error;
  auto doc = support::json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("schema_version")->number, 1);
  EXPECT_EQ(doc->find("generator")->string, "analysis");
  EXPECT_EQ(doc->find("clock_period_ns")->number, 10);
  const support::json::Value* properties = doc->find("properties");
  ASSERT_NE(properties, nullptr);
  ASSERT_EQ(properties->array.size(), suite.properties.size());
  for (const support::json::Value& p : properties->array) {
    EXPECT_TRUE(p.find("name")->is_string());
    EXPECT_TRUE(p.find("classification")->is_string());
    EXPECT_EQ(p.find("audit")->string, "confirmed");
    ASSERT_NE(p.find("lifetime"), nullptr);
    EXPECT_NE(p.find("lifetime")->find("bounded"), nullptr);
    for (const support::json::Value& d : p.find("diagnostics")->array) {
      EXPECT_TRUE(d.find("code")->is_string());
      EXPECT_TRUE(d.find("severity")->is_string());
    }
  }
  // A clean suite lints with zero errors and zero warnings.
  EXPECT_EQ(doc->find("totals")->find("errors")->number, 0);
  EXPECT_EQ(doc->find("totals")->find("warnings")->number, 0);
}

// ---- VCD writer ----------------------------------------------------------------

TEST(Vcd, EmitsHeaderInitialValuesAndChanges) {
  sim::Kernel kernel;
  sim::Signal<bool> flag(kernel, "flag", false);
  sim::Signal<uint64_t> data(kernel, "data", 3);
  std::ostringstream os;
  sim::VcdWriter vcd(kernel, os, "duv");
  vcd.add(flag);
  vcd.add(data, 8);
  vcd.start_dump();

  kernel.schedule_at(10, [&] { flag.write(true); });
  kernel.schedule_at(20, [&] { data.write(0b101); });
  kernel.run_all();

  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module duv $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! flag $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8 \" data $end"), std::string::npos);
  // Initial values inside $dumpvars.
  EXPECT_NE(out.find("0!"), std::string::npos);
  EXPECT_NE(out.find("b11 \""), std::string::npos);
  // Timestamped changes.
  EXPECT_NE(out.find("#10\n1!"), std::string::npos);
  EXPECT_NE(out.find("#20\nb101 \""), std::string::npos);
  EXPECT_EQ(vcd.changes_written(), 4u);  // 2 initial + 2 changes
}

TEST(Vcd, SameTimestampWrittenOnce) {
  sim::Kernel kernel;
  sim::Signal<bool> a(kernel, "a", false);
  sim::Signal<bool> b(kernel, "b", false);
  std::ostringstream os;
  sim::VcdWriter vcd(kernel, os);
  vcd.add(a);
  vcd.add(b);
  vcd.start_dump();
  kernel.schedule_at(10, [&] {
    a.write(true);
    b.write(true);
  });
  kernel.run_all();
  const std::string out = os.str();
  // Only one "#10" marker for both changes.
  EXPECT_EQ(out.find("#10"), out.rfind("#10"));
}

TEST(Vcd, WorksWithClockedDesign) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 10, 0);
  sim::Signal<uint64_t> counter(kernel, "counter", 0);
  clock.on_posedge([&] { counter.write(counter.read() + 1); });
  std::ostringstream os;
  sim::VcdWriter vcd(kernel, os);
  vcd.add(counter, 16);
  vcd.start_dump();
  kernel.run(50);
  EXPECT_GE(vcd.changes_written(), 6u);  // initial + 5-6 increments
  EXPECT_NE(os.str().find("#40"), std::string::npos);
}

}  // namespace
}  // namespace repro
