// Symbolic bounded trajectory evaluation (analysis/symbolic.h): exhaustive
// enumeration cross-checks against the reference evaluator on randomized
// small programs (the symbolic verdict set must equal the enumerated set
// exactly), witness replay through the concrete interpreter, dead-node fold
// parity on the concrete verdict stream, the time-scheduled next_e encoding
// (met / missed / vacuous deadlines), and the end-to-end byte-identity
// contract: simulation reports with symbolic pruning + folds on are
// byte-identical to the plain-prune reports at jobs 1 and 4 on both designs.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "abv/report.h"
#include "analysis/driver.h"
#include "analysis/symbolic.h"
#include "checker/program.h"
#include "checker/reference_eval.h"
#include "checker/trace.h"
#include "models/testbench.h"
#include "psl/ast.h"
#include "psl/parser.h"

namespace repro::analysis {
namespace {

using checker::Verdict;

// ---- Helpers --------------------------------------------------------------------

// Deterministic xorshift64* so the sweep is reproducible per seed.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed * 2685821657736338717ULL + 1) {}
  uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 2685821657736338717ULL;
  }
  size_t below(size_t n) { return static_cast<size_t>(next() % n); }
};

// Random event-stepped formula: every operator the symbolic engine supports
// in the event-stepped encoding (no next_e, no abort), over truthy atoms of
// distinct signals so (atom, step) independence matches the BDD model.
psl::ExprPtr random_event_formula(Rng& rng, int depth,
                                  const std::vector<std::string>& sigs) {
  if (depth <= 0 || rng.below(4) == 0) {
    return psl::sig(sigs[rng.below(sigs.size())]);
  }
  switch (rng.below(9)) {
    case 0:
      return psl::not_(random_event_formula(rng, depth - 1, sigs));
    case 1:
      return psl::and_(random_event_formula(rng, depth - 1, sigs),
                       random_event_formula(rng, depth - 1, sigs));
    case 2:
      return psl::or_(random_event_formula(rng, depth - 1, sigs),
                      random_event_formula(rng, depth - 1, sigs));
    case 3:
      return psl::implies(random_event_formula(rng, depth - 1, sigs),
                          random_event_formula(rng, depth - 1, sigs));
    case 4:
      return psl::next(static_cast<uint32_t>(1 + rng.below(2)),
                       random_event_formula(rng, depth - 1, sigs));
    case 5:
      return psl::until(random_event_formula(rng, depth - 1, sigs),
                        random_event_formula(rng, depth - 1, sigs),
                        rng.below(2) == 1);
    case 6:
      return psl::release(random_event_formula(rng, depth - 1, sigs),
                          random_event_formula(rng, depth - 1, sigs));
    case 7:
      return psl::always(random_event_formula(rng, depth - 1, sigs));
    default:
      return psl::eventually(random_event_formula(rng, depth - 1, sigs));
  }
}

// One concrete trace of `len` events on the 10 ns grid; bit (s * n + k) of
// `mask` is the value of signal k at step s.
checker::Trace trace_from_mask(const std::vector<std::string>& sigs,
                               size_t len, uint64_t mask) {
  checker::Trace trace;
  for (size_t s = 0; s < len; ++s) {
    checker::Observation o;
    o.time = static_cast<psl::TimeNs>((s + 1) * 10);
    for (size_t k = 0; k < sigs.size(); ++k) {
      o.values.set(sigs[k], (mask >> (s * sigs.size() + k)) & 1u);
    }
    trace.push_back(std::move(o));
  }
  return trace;
}

// Signal names of a program's atoms (truthy atoms over distinct signals).
std::vector<std::string> atom_signals(const checker::Program& program) {
  std::vector<std::string> sigs;
  sigs.reserve(program.atoms().size());
  for (const auto& a : program.atoms()) sigs.push_back(a.lhs);
  return sigs;
}

// Streams `trace` through both compiled programs and requires identical
// verdicts event for event (stopping, like the runtime, at the first
// informative verdict) and at end of trace.
void expect_stream_parity(const psl::ExprPtr& original,
                          const psl::ExprPtr& folded,
                          const checker::Trace& trace) {
  checker::ProgramState a(checker::Program::compile(original));
  checker::ProgramState b(checker::Program::compile(folded));
  for (const auto& o : trace) {
    const checker::Event ev{o.time, &o.values};
    const Verdict va = a.step(ev);
    const Verdict vb = b.step(ev);
    ASSERT_EQ(va, vb) << psl::to_string(original) << "\n  folded: "
                      << psl::to_string(folded);
    if (va != Verdict::kPending) return;
  }
  ASSERT_EQ(a.finish(), b.finish())
      << psl::to_string(original) << "\n  folded: " << psl::to_string(folded);
}

SymbolicEval::Options event_options(size_t budget) {
  SymbolicEval::Options opt;
  opt.clock_period_ns = 10;
  opt.step_budget = budget;
  return opt;
}

// Replays the symbolic witness and checks the predicted verdict.
void expect_witness_replays_false(const SymbolicEval::FailWitness& w,
                                  const psl::ExprPtr& body) {
  EXPECT_EQ(w.trace.size(), w.length);
  EXPECT_EQ(replay_witness(body, w.trace), Verdict::kFalse)
      << psl::to_string(body);
}

// ---- Exhaustive enumeration cross-check -----------------------------------------

// For ~250 random seeds: enumerate EVERY concrete trace of every length up
// to the horizon (all 2^(atoms x len) valuations) and require the symbolic
// answers to match the enumerated set exactly:
//   - never_fails()  <=>  no enumerated complete trace evaluates kFalse,
//   - fail_witness() exists iff a failure exists, has the minimal failing
//     length, and replays to kFalse through the concrete interpreter,
//   - exhaustive() implies every horizon-length incomplete prefix is
//     already decided (informative verdicts are extension-invariant),
//   - an accepted fold_dead() preserves the concrete verdict stream on
//     every enumerated trace.
TEST(SymbolicExhaustive, MatchesEnumerationOnRandomPrograms) {
  const std::vector<std::string> pool = {"a", "b", "c"};
  size_t checked = 0;
  for (uint64_t seed = 1; seed <= 250; ++seed) {
    Rng rng(seed * 7919 + 13);
    const size_t nsigs = 2 + rng.below(2);  // 2 or 3 distinct atoms
    const std::vector<std::string> sigs(pool.begin(), pool.begin() + nsigs);
    const psl::ExprPtr formula = random_event_formula(rng, 2, sigs);
    // Keep atoms x horizon <= 12 bits so full enumeration stays cheap.
    const size_t budget = nsigs == 2 ? 5 : 4;
    SymbolicEval sym(formula, event_options(budget));
    ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk)
        << psl::to_string(formula) << ": " << sym.skip_reason();
    ASSERT_FALSE(sym.time_scheduled());
    const psl::ExprPtr body = sym.body();
    const std::vector<std::string> used = atom_signals(*sym.program());
    const size_t horizon = sym.horizon();
    ASSERT_GE(horizon, 1u);
    if (used.empty() || used.size() * horizon > 12) continue;

    const psl::ExprPtr fold = sym.fold_dead();
    bool any_fail = false;
    size_t min_fail_len = 0;
    bool all_decided_at_horizon = true;
    for (size_t len = 1; len <= horizon; ++len) {
      const uint64_t combos = uint64_t{1} << (used.size() * len);
      for (uint64_t mask = 0; mask < combos; ++mask) {
        const checker::Trace trace = trace_from_mask(used, len, mask);
        const Verdict complete =
            checker::reference_eval(body, trace, 0, /*complete=*/true);
        if (complete == Verdict::kFalse && !any_fail) {
          any_fail = true;
          min_fail_len = len;
        }
        if (len == horizon &&
            checker::reference_eval(body, trace, 0, /*complete=*/false) ==
                Verdict::kPending) {
          all_decided_at_horizon = false;
        }
        if (fold != nullptr) {
          expect_stream_parity(body, fold, trace);
          if (HasFatalFailure()) return;
        }
      }
    }

    EXPECT_EQ(sym.never_fails(), !any_fail)
        << "seed " << seed << ": " << psl::to_string(body);
    const std::optional<SymbolicEval::FailWitness> w = sym.fail_witness();
    ASSERT_EQ(w.has_value(), any_fail)
        << "seed " << seed << ": " << psl::to_string(body);
    if (w.has_value()) {
      EXPECT_EQ(w->length, min_fail_len)
          << "seed " << seed << ": " << psl::to_string(body);
      expect_witness_replays_false(*w, body);
    }
    // Soundness direction: an exhaustive claim must mean every trajectory
    // is decided on the horizon prefix. (The converse may fail only when
    // the horizon was clamped, which conservatively reports false.)
    if (sym.exhaustive()) {
      EXPECT_TRUE(all_decided_at_horizon)
          << "seed " << seed << ": " << psl::to_string(body);
    }
    ++checked;
  }
  // The sweep must actually exercise the cross-check, not skip its way out.
  EXPECT_GE(checked, 200u);
}

// ---- Targeted event-stepped cases -----------------------------------------------

TEST(SymbolicEvent, TautologyNeverFailsExhaustively) {
  SymbolicEval sym(psl::or_(psl::sig("a"), psl::not_(psl::sig("a"))),
                   event_options(8));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  EXPECT_FALSE(sym.time_scheduled());
  EXPECT_TRUE(sym.exhaustive());
  EXPECT_TRUE(sym.never_fails());
  EXPECT_FALSE(sym.fail_witness().has_value());
}

TEST(SymbolicEvent, WeakNextWitnessHasMinimalLength) {
  // next[2](a) passes weakly on complete traces shorter than 3 events; the
  // minimal failure is a 3-event trace with a low at the target step.
  const psl::ExprPtr f = psl::next(2, psl::sig("a"));
  SymbolicEval sym(f, event_options(8));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  EXPECT_FALSE(sym.never_fails());
  const auto w = sym.fail_witness();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 3u);
  ASSERT_EQ(w->trace.size(), 3u);
  EXPECT_EQ(w->trace[0].time, 10u);
  EXPECT_EQ(w->trace[2].time, 30u);
  expect_witness_replays_false(*w, sym.body());
}

TEST(SymbolicEvent, StrongEventualityFailsOnEmptyProgress) {
  // eventually! a fails on any complete trace where a never rises; the
  // minimal witness is a single low event.
  SymbolicEval sym(psl::eventually(psl::sig("a")), event_options(6));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  EXPECT_FALSE(sym.never_fails());
  const auto w = sym.fail_witness();
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 1u);
  expect_witness_replays_false(*w, sym.body());
}

TEST(SymbolicEvent, LeadingAlwaysChainIsStripped) {
  // The wrapper anchors one instance per activation; the analysis covers
  // the stripped body.
  const psl::ExprPtr f = psl::always(psl::next(1, psl::sig("a")));
  SymbolicEval sym(f, event_options(8));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  EXPECT_EQ(psl::to_string(sym.body()),
            psl::to_string(psl::next(1, psl::sig("a"))));
}

TEST(SymbolicEvent, DeadDisjunctIsDetectedAndFolded) {
  // (a || !a) || b: the b leaf can never influence the verdict. The fold
  // must shrink the program and keep the verdict stream intact.
  const psl::ExprPtr f = psl::or_(
      psl::or_(psl::sig("a"), psl::not_(psl::sig("a"))), psl::sig("b"));
  SymbolicEval sym(f, event_options(4));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  ASSERT_TRUE(sym.exhaustive());
  EXPECT_FALSE(sym.dead_nodes().empty());
  size_t folded_nodes = 0;
  const psl::ExprPtr fold = sym.fold_dead(&folded_nodes);
  ASSERT_NE(fold, nullptr);
  EXPECT_GT(folded_nodes, 0u);
  EXPECT_LT(checker::Program::compile(fold)->size(),
            checker::Program::compile(sym.body())->size());
  for (uint64_t mask = 0; mask < 4; ++mask) {
    expect_stream_parity(sym.body(), fold, trace_from_mask({"a", "b"}, 1, mask));
  }
}

TEST(SymbolicEvent, AntecedentUnsatDetectsContradictoryGuard) {
  const psl::ExprPtr vacuous = psl::implies(
      psl::and_(psl::sig("a"), psl::not_(psl::sig("a"))),
      psl::next(1, psl::sig("b")));
  SymbolicEval sym(vacuous, event_options(8));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  EXPECT_TRUE(sym.antecedent_unsat(nullptr));
  EXPECT_TRUE(sym.never_fails());

  const psl::ExprPtr live =
      psl::implies(psl::sig("a"), psl::next(1, psl::sig("b")));
  SymbolicEval sat(live, event_options(8));
  ASSERT_EQ(sat.status(), SymbolicEval::Status::kOk);
  EXPECT_FALSE(sat.antecedent_unsat(nullptr));
}

TEST(SymbolicEvent, GuardCanMakeSatAntecedentVacuous) {
  // The antecedent a is satisfiable on its own but not under guard !a.
  const psl::ExprPtr f =
      psl::implies(psl::sig("a"), psl::next(1, psl::sig("b")));
  SymbolicEval sym(f, event_options(8));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  EXPECT_FALSE(sym.antecedent_unsat(nullptr));
  EXPECT_TRUE(sym.antecedent_unsat(psl::not_(psl::sig("a"))));
}

// ---- Unsupported shapes decline explicitly --------------------------------------

TEST(SymbolicSkip, AbortIsDeclinedWithReason) {
  SymbolicEval sym(psl::abort_(psl::eventually(psl::sig("a")), psl::sig("b")),
                   event_options(8));
  EXPECT_EQ(sym.status(), SymbolicEval::Status::kUnsupported);
  EXPECT_FALSE(sym.skip_reason().empty());
  EXPECT_FALSE(sym.never_fails());
  EXPECT_FALSE(sym.fail_witness().has_value());
  EXPECT_EQ(sym.fold_dead(), nullptr);
}

TEST(SymbolicSkip, MixedCurrenciesAreDeclined) {
  // next counts events, next_e counts nanoseconds; one trajectory encoding
  // cannot cover both.
  SymbolicEval sym(psl::and_(psl::next(1, psl::sig("a")),
                             psl::next_eps(1, 20, psl::sig("b"))),
                   event_options(8));
  EXPECT_EQ(sym.status(), SymbolicEval::Status::kUnsupported);
  EXPECT_FALSE(sym.skip_reason().empty());
}

// ---- Time-scheduled (next_e) encoding -------------------------------------------

TEST(SymbolicScheduled, DeadlineFormulaFindsMissedDeadlineWitness) {
  // ds -> next_e[30](rdy): fails when ds rises and no event carries rdy at
  // the 30 ns deadline (missed, low, or truncated). The witness must replay
  // to a concrete failure.
  const psl::ExprPtr f =
      psl::implies(psl::sig("ds"), psl::next_eps(1, 30, psl::sig("rdy")));
  SymbolicEval sym(f, event_options(8));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  EXPECT_TRUE(sym.time_scheduled());
  EXPECT_TRUE(sym.exhaustive());  // quantifies over all event streams
  EXPECT_FALSE(sym.never_fails());
  const auto w = sym.fail_witness();
  ASSERT_TRUE(w.has_value());
  ASSERT_FALSE(w->trace.empty());
  EXPECT_EQ(w->trace.front().time, 0u);  // anchored at the activation
  expect_witness_replays_false(*w, sym.body());
}

TEST(SymbolicScheduled, VacuousDeadlineNeverFails) {
  // (a && !a) -> next_e[30](rdy): the activation can never happen, so no
  // event stream fails; scheduled analysis is always exhaustive.
  const psl::ExprPtr f = psl::implies(
      psl::and_(psl::sig("a"), psl::not_(psl::sig("a"))),
      psl::next_eps(1, 30, psl::sig("rdy")));
  SymbolicEval sym(f, event_options(8));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  EXPECT_TRUE(sym.time_scheduled());
  EXPECT_TRUE(sym.exhaustive());
  EXPECT_TRUE(sym.never_fails());
  EXPECT_FALSE(sym.fail_witness().has_value());
  EXPECT_TRUE(sym.antecedent_unsat(nullptr));
}

TEST(SymbolicScheduled, MetDeadlineIsNotAFalsePositive) {
  // next_e of a tautology still fails when the stream skips the deadline
  // instant entirely — Def. III.3's "no event observable" clause. The
  // witness must show an event strictly past the deadline.
  const psl::ExprPtr f =
      psl::next_eps(1, 20, psl::or_(psl::sig("a"), psl::not_(psl::sig("a"))));
  SymbolicEval sym(f, event_options(8));
  ASSERT_EQ(sym.status(), SymbolicEval::Status::kOk);
  ASSERT_TRUE(sym.time_scheduled());
  EXPECT_FALSE(sym.never_fails());
  const auto w = sym.fail_witness();
  ASSERT_TRUE(w.has_value());
  expect_witness_replays_false(*w, sym.body());
  bool past_deadline = false;
  for (const auto& ev : w->trace) past_deadline |= ev.time > 20;
  EXPECT_TRUE(past_deadline);
}

// ---- Witness replay through the concrete interpreter ----------------------------

TEST(ReplayWitness, ReproducesVerdictsOnHandBuiltTraces) {
  const psl::ExprPtr f = psl::next(1, psl::sig("a"));
  WitnessTrace failing;
  failing.push_back({10, {{"a", 1}}});
  failing.push_back({20, {{"a", 0}}});
  EXPECT_EQ(replay_witness(f, failing), Verdict::kFalse);

  WitnessTrace passing;
  passing.push_back({10, {{"a", 0}}});
  passing.push_back({20, {{"a", 1}}});
  EXPECT_EQ(replay_witness(f, passing), Verdict::kTrue);

  // One event leaves the weak next pending; finish() resolves it true.
  WitnessTrace truncated;
  truncated.push_back({10, {{"a", 0}}});
  EXPECT_EQ(replay_witness(f, truncated), Verdict::kTrue);

  EXPECT_EQ(replay_witness(f, WitnessTrace{}), Verdict::kPending);
}

// ---- Driver integration (SYM005 skip accounting) --------------------------------

TEST(SymbolicDriver, MixedCurrencySkipIsCountedAsSkipped) {
  auto parsed = psl::parse_rtl_property(
      "m: always (next(ds) && next_e[1,20](rdy)) @clk_pos");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  AnalysisOptions options;
  options.symbolic_budget = 8;
  Driver driver(options);
  const PropertyAnalysis& record = driver.analyze(std::move(parsed).take());
  bool saw_skip = false;
  for (const Diagnostic& d : record.diagnostics) {
    if (d.code == "SYM005") saw_skip = true;
  }
  EXPECT_TRUE(saw_skip);
  EXPECT_GE(driver.counts().skipped, 1u);
}

TEST(SymbolicDriver, ReachableFailureCarriesReplayableWitness) {
  auto parsed =
      psl::parse_rtl_property("w: always (ds -> next[2](rdy)) @clk_pos");
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  AnalysisOptions options;
  options.symbolic_budget = 8;
  Driver driver(options);
  const PropertyAnalysis& record = driver.analyze(std::move(parsed).take());
  const Diagnostic* sym004 = nullptr;
  for (const Diagnostic& d : record.diagnostics) {
    if (d.code == "SYM004") {
      sym004 = &d;
      break;
    }
  }
  ASSERT_NE(sym004, nullptr);
  ASSERT_FALSE(sym004->witness.empty());
  EXPECT_EQ(replay_witness(
                psl::implies(psl::sig("ds"), psl::next(2, psl::sig("rdy"))),
                sym004->witness),
            Verdict::kFalse);
}

// ---- End-to-end byte identity ---------------------------------------------------

std::string report_json(const models::RunResult& result) {
  std::ostringstream os;
  result.report.write_json(os, /*timing=*/nullptr);
  return os.str();
}

void expect_report_byte_identity(models::Design design, models::Level level,
                                 size_t jobs) {
  models::RunConfig plain;
  plain.design = design;
  plain.level = level;
  plain.checkers = 16;  // clamped to the suite size
  plain.workload = 300;
  plain.engine.jobs = jobs;
  plain.analysis.prune = PruneMode::kSafe;

  models::RunConfig symbolic = plain;
  symbolic.analysis.symbolic_budget = 16;

  const models::RunResult a = models::run_simulation(plain);
  const models::RunResult b = models::run_simulation(symbolic);
  ASSERT_TRUE(a.functional_ok);
  ASSERT_TRUE(b.functional_ok);
  // The symbolic evidence may only elide what was already provably
  // uncheckable and swap node tables behind unchanged cost accounting: the
  // full machine-readable report must not move by a single byte.
  EXPECT_EQ(report_json(a), report_json(b))
      << models::to_string(design) << "/" << models::to_string(level)
      << " jobs=" << jobs;
  EXPECT_EQ(a.properties_ok, b.properties_ok);
}

TEST(SymbolicByteIdentity, Des56ReportsIdenticalWithSymbolicPruneAndFolds) {
  expect_report_byte_identity(models::Design::kDes56, models::Level::kRtl, 1);
  expect_report_byte_identity(models::Design::kDes56, models::Level::kTlmAt, 1);
  expect_report_byte_identity(models::Design::kDes56, models::Level::kTlmAt, 4);
}

TEST(SymbolicByteIdentity, ColorConvReportsIdenticalWithSymbolicPruneAndFolds) {
  expect_report_byte_identity(models::Design::kColorConv, models::Level::kRtl,
                              1);
  expect_report_byte_identity(models::Design::kColorConv,
                              models::Level::kTlmAt, 1);
  expect_report_byte_identity(models::Design::kColorConv,
                              models::Level::kTlmAt, 4);
}

}  // namespace
}  // namespace repro::analysis
