#include <gtest/gtest.h>

#include "models/colorconv/colorconv_core.h"
#include "models/colorconv/colorconv_rtl.h"
#include "models/stimulus.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "support/rng.h"

namespace repro::models {
namespace {

// ---- Reference conversion -----------------------------------------------------

TEST(ColorConvRef, BlackWhiteGray) {
  EXPECT_EQ(colorconv_ref(0, 0, 0), (Ycbcr{16, 128, 128}));
  EXPECT_EQ(colorconv_ref(255, 255, 255), (Ycbcr{235, 128, 128}));
  EXPECT_EQ(colorconv_ref(100, 100, 100), (Ycbcr{102, 128, 128}));
}

TEST(ColorConvRef, PrimaryColors) {
  // Saturated primaries hit the nominal Cb/Cr extremes.
  EXPECT_EQ(colorconv_ref(0, 0, 255).cb, 240);  // blue
  EXPECT_EQ(colorconv_ref(255, 0, 0).cr, 240);  // red
  EXPECT_EQ(colorconv_ref(255, 255, 0).cb, 16); // yellow
  EXPECT_EQ(colorconv_ref(0, 255, 255).cr, 16); // cyan
}

class ColorConvRange : public ::testing::TestWithParam<int> {};

TEST_P(ColorConvRange, OutputsStayInNominalRanges) {
  // The range properties of the suite (c8-c10), exhaustively over a seeded
  // sample of the input cube.
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const uint8_t r = static_cast<uint8_t>(rng.below(256));
    const uint8_t g = static_cast<uint8_t>(rng.below(256));
    const uint8_t b = static_cast<uint8_t>(rng.below(256));
    const Ycbcr out = colorconv_ref(r, g, b);
    ASSERT_GE(out.y, 16) << int(r) << "," << int(g) << "," << int(b);
    ASSERT_LE(out.y, 235);
    ASSERT_GE(out.cb, 16);
    ASSERT_LE(out.cb, 240);
    ASSERT_GE(out.cr, 16);
    ASSERT_LE(out.cr, 240);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ColorConvRange, ::testing::Range(0, 20));

TEST(ColorConvRef, GrayscaleHasNeutralChroma) {
  for (int v = 0; v < 256; ++v) {
    const Ycbcr out = colorconv_ref(v, v, v);
    ASSERT_EQ(out.cb, 128) << v;
    ASSERT_EQ(out.cr, 128) << v;
  }
}

// ---- Pipeline ---------------------------------------------------------------

TEST(ColorConvPipeline, EightCycleLatency) {
  ColorConvPipeline pipe;
  ColorConvInputs in;
  in.ds = true;
  in.r = 10;
  in.g = 20;
  in.b = 30;
  ColorConvOutputs out = pipe.step(in);
  EXPECT_FALSE(out.rdy);
  in = ColorConvInputs{};
  for (int edge = 1; edge <= 7; ++edge) {
    out = pipe.step(in);
    EXPECT_FALSE(out.rdy) << "edge " << edge;
    EXPECT_EQ(out.rdy_next_cycle, edge == 7);
  }
  out = pipe.step(in);  // edge 8
  EXPECT_TRUE(out.rdy);
  const Ycbcr expect = colorconv_ref(10, 20, 30);
  EXPECT_EQ(out.y, expect.y);
  EXPECT_EQ(out.cb, expect.cb);
  EXPECT_EQ(out.cr, expect.cr);
}

TEST(ColorConvPipeline, OnePixelPerCycleThroughput) {
  ColorConvPipeline pipe;
  Rng rng(11);
  std::vector<Pixel> pixels;
  for (int i = 0; i < 32; ++i) {
    pixels.push_back({static_cast<uint8_t>(rng.below(256)),
                      static_cast<uint8_t>(rng.below(256)),
                      static_cast<uint8_t>(rng.below(256))});
  }
  size_t results = 0;
  for (size_t edge = 0; edge < pixels.size() + 8; ++edge) {
    ColorConvInputs in;
    if (edge < pixels.size()) {
      in.ds = true;
      in.r = pixels[edge].r;
      in.g = pixels[edge].g;
      in.b = pixels[edge].b;
    }
    const ColorConvOutputs out = pipe.step(in);
    if (out.rdy) {
      const Pixel& p = pixels[results];
      const Ycbcr expect = colorconv_ref(p.r, p.g, p.b);
      ASSERT_EQ(out.y, expect.y) << "pixel " << results;
      ASSERT_EQ(out.cb, expect.cb);
      ASSERT_EQ(out.cr, expect.cr);
      ++results;
    }
  }
  EXPECT_EQ(results, pixels.size());
}

TEST(ColorConvPipeline, BubblesPropagate) {
  ColorConvPipeline pipe;
  ColorConvInputs pixel;
  pixel.ds = true;
  pixel.r = 50;
  // pixel, bubble, pixel: rdy pattern must be 1,0,1 starting at edge 8.
  pipe.step(pixel);
  pipe.step(ColorConvInputs{});
  pipe.step(pixel);
  std::vector<bool> rdy;
  for (int edge = 3; edge <= 10; ++edge) {
    rdy.push_back(pipe.step(ColorConvInputs{}).rdy);
  }
  // Edges 8, 9, 10 -> indices 5, 6, 7.
  EXPECT_FALSE(rdy[4]);
  EXPECT_TRUE(rdy[5]);
  EXPECT_FALSE(rdy[6]);
  EXPECT_TRUE(rdy[7]);
}

TEST(ColorConvPipeline, ResetClearsState) {
  ColorConvPipeline pipe;
  ColorConvInputs in;
  in.ds = true;
  pipe.step(in);
  pipe.reset();
  for (int edge = 0; edge < 12; ++edge) {
    EXPECT_FALSE(pipe.step(ColorConvInputs{}).rdy);
  }
}

// ---- RTL model vs. pipeline ---------------------------------------------------

TEST(ColorConvRtl, MatchesPipelineOverRandomStream) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 10, 0);
  ColorConvRtl rtl(kernel, clock);
  ColorConvPipeline reference;

  const std::vector<CcBurst> bursts = make_cc_bursts(120, 5);
  ColorConvDriverModel driver(bursts);
  auto last_inputs = std::make_shared<ColorConvInputs>();
  size_t divergences = 0;

  clock.on_negedge([&] {
    if (driver.done()) {
      kernel.stop();
      return;
    }
    const ColorConvDrive drive =
        driver.tick(rtl.rdy.read(), static_cast<uint8_t>(rtl.y.read()),
                    static_cast<uint8_t>(rtl.cb.read()),
                    static_cast<uint8_t>(rtl.cr.read()));
    rtl.ds.write(drive.inputs.ds);
    rtl.r.write(drive.inputs.r);
    rtl.g.write(drive.inputs.g);
    rtl.b.write(drive.inputs.b);
    *last_inputs = drive.inputs;
  });
  clock.on_posedge([&] {
    const ColorConvOutputs expect = reference.step(*last_inputs);
    kernel.schedule_delta([&, expect] {
      kernel.schedule_delta([&rtl, expect, &divergences] {
        if (rtl.rdy.read() != expect.rdy || rtl.y.read() != expect.y ||
            rtl.cb.read() != expect.cb || rtl.cr.read() != expect.cr ||
            rtl.rdy_next_cycle.read() != expect.rdy_next_cycle) {
          ++divergences;
        }
      });
    });
  });

  kernel.run(10'000'000);
  EXPECT_EQ(divergences, 0u);
  EXPECT_EQ(driver.mismatches(), 0u);
}

// ---- Burst stimulus -----------------------------------------------------------

TEST(Stimulus, BurstsRespectSofPrecondition) {
  const auto bursts = make_cc_bursts(500, 9);
  size_t total = 0;
  for (const auto& burst : bursts) {
    EXPECT_GE(burst.gap, 9u);  // sof fires only into an empty pipeline
    EXPECT_GE(burst.pixels.size(), 1u);
    total += burst.pixels.size();
  }
  EXPECT_EQ(total, 500u);
}

TEST(Stimulus, BurstsContainCornerCasePixels) {
  const auto bursts = make_cc_bursts(2000, 42);
  size_t black = 0, white = 0, gray = 0;
  for (const auto& burst : bursts) {
    for (const auto& p : burst.pixels) {
      if (p.r == 0 && p.g == 0 && p.b == 0) ++black;
      if (p.r == 255 && p.g == 255 && p.b == 255) ++white;
      if (p.r == p.g && p.g == p.b) ++gray;
    }
  }
  EXPECT_GT(black, 20u);  // c4 fires
  EXPECT_GT(white, 20u);  // c5 fires
  EXPECT_GT(gray, 100u);  // c12 fires
}

}  // namespace
}  // namespace repro::models
