// Tests for the checker code generator: structural golden checks plus a
// differential test that compiles the generated C++ with the system
// compiler and compares its verdict counters against the in-process
// PropertyChecker on a shared random trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checker/checker.h"
#include "checker/codegen.h"
#include "checker/trace.h"
#include "psl/parser.h"
#include "support/rng.h"

namespace repro::checker {
namespace {

psl::TlmProperty tlm(const std::string& text) {
  auto result = psl::parse_tlm_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

// ---- Structural checks ----------------------------------------------------------

TEST(Codegen, EmitsTypedValuesStruct) {
  const std::string code =
      generate_checker(tlm("q3: always (!ds || next_e[1,170](rdy)) @Tb"));
  EXPECT_NE(code.find("struct Values"), std::string::npos);
  EXPECT_NE(code.find("uint64_t ds = 0;"), std::string::npos);
  EXPECT_NE(code.find("uint64_t rdy = 0;"), std::string::npos);
  EXPECT_NE(code.find("class q3_checker"), std::string::npos);
  EXPECT_NE(code.find("void on_event(uint64_t t, const Values& v)"),
            std::string::npos);
  // The 170 ns deadline is hard-coded into the next_e state machine.
  EXPECT_NE(code.find("s.target = t + 170"), std::string::npos);
}

TEST(Codegen, BooleanSubformulasAreInlined) {
  const std::string code = generate_checker(
      tlm("inv: always (!rdy || (cb >= 16 && cb <= 240)) @Tb"));
  // Entirely boolean body: no obligation structs at all.
  EXPECT_EQ(code.find("struct S0"), std::string::npos);
  EXPECT_NE(code.find("(v.cb >= 16)"), std::string::npos);
}

TEST(Codegen, GuardGatesActivation) {
  const std::string code = generate_checker(
      tlm("g: always (!ds || next_e[1,20](rdy)) @Tb && monitor_en"));
  EXPECT_NE(code.find("if (!((v.monitor_en != 0))) return;"), std::string::npos);
}

TEST(Codegen, CommentsRecordTheProperty) {
  const std::string code =
      generate_checker(tlm("q: always (!ds || (a until b)) @Tb"));
  EXPECT_NE(code.find("// property: always !ds || (a until b)"),
            std::string::npos);
}

// ---- Differential compile-and-run test --------------------------------------------

struct DiffCase {
  std::string name;
  std::string property;  // TLM property text
};

// Signals used by all differential cases (one shared trace).
const char* kSignals[] = {"a", "b", "c", "ds", "rdy", "rst"};

Trace random_trace(uint64_t seed, size_t length) {
  Rng rng(seed);
  Trace trace;
  psl::TimeNs time = 10;
  for (size_t i = 0; i < length; ++i) {
    Observation o;
    o.time = time;
    for (const char* sig : kSignals) o.values.set(sig, rng.below(3));
    trace.push_back(std::move(o));
    time += 10 * rng.range(1, 3);
  }
  return trace;
}

TEST(CodegenDifferential, GeneratedCheckersMatchLibrary) {
  const std::vector<DiffCase> cases = {
      {"c0", "always (!ds || next_e[1,30](rdy)) @Tb"},
      {"c1", "always (!a || (b until c)) @Tb"},
      {"c2", "always ((!a || next[2](c)) abort rst) @Tb"},
      {"c3", "always (!ds || (eventually! rdy)) @Tb"},
      {"c4", "always (!(a && b == 2) || next_e[1,20](c != 0)) @Tb"},
      {"c5", "always (rdy -> b <= 2) @Tb"},
  };
  const Trace trace = random_trace(20260705, 40);

  // Library counters.
  struct Counters {
    uint64_t activations, holds, failures;
  };
  std::vector<Counters> expected;
  for (const DiffCase& dc : cases) {
    const psl::TlmProperty property = tlm(dc.name + ": " + dc.property);
    PropertyChecker checker(dc.name, property.formula, property.context.guard);
    for (const Observation& o : trace) checker.on_event(o.time, o.values);
    checker.finish();
    expected.push_back({checker.stats().activations, checker.stats().holds,
                        checker.stats().failures});
  }

  // Generated program: all checkers plus a main() replaying the same trace.
  std::string program;
  for (const DiffCase& dc : cases) {
    program += generate_checker(tlm(dc.name + ": " + dc.property));
  }
  program += "#include <cstdio>\n\nint main() {\n";
  program += "  struct Row { unsigned long long t";
  for (const char* sig : kSignals) program += std::string(", ") + sig;
  program += "; };\n  static const Row rows[] = {\n";
  for (const Observation& o : trace) {
    program += "    {" + std::to_string(o.time);
    for (const char* sig : kSignals) {
      program += ", " + std::to_string(o.values.value(sig));
    }
    program += "},\n";
  }
  program += "  };\n";
  for (const DiffCase& dc : cases) {
    program += "  gen_" + dc.name + "_checker::" + dc.name + "_checker " +
               dc.name + ";\n";
  }
  program += "  for (const Row& r : rows) {\n";
  for (const DiffCase& dc : cases) {
    const psl::TlmProperty property = tlm(dc.property);
    program += "    {\n      gen_" + dc.name + "_checker::Values v;\n";
    auto signals = psl::referenced_signals(property.formula);
    if (property.context.guard) {
      for (const auto& s : psl::referenced_signals(property.context.guard)) {
        signals.insert(s);
      }
    }
    for (const std::string& sig : signals) {
      program += "      v." + sig + " = r." + sig + ";\n";
    }
    program += "      " + dc.name + ".on_event(r.t, v);\n    }\n";
  }
  program += "  }\n";
  for (const DiffCase& dc : cases) program += "  " + dc.name + ".finish();\n";
  for (const DiffCase& dc : cases) {
    program += "  std::printf(\"%llu %llu %llu\\n\", (unsigned long long)" +
               dc.name + ".activations(), (unsigned long long)" + dc.name +
               ".holds(), (unsigned long long)" + dc.name + ".failures());\n";
  }
  program += "  return 0;\n}\n";

  const std::string dir = ::testing::TempDir();
  const std::string source = dir + "/gen_checkers.cc";
  const std::string binary = dir + "/gen_checkers";
  {
    std::ofstream out(source);
    ASSERT_TRUE(out) << source;
    out << program;
  }
  const std::string compile =
      "g++ -std=c++17 -O1 -o " + binary + " " + source + " 2>&1";
  FILE* cc = popen(compile.c_str(), "r");
  ASSERT_NE(cc, nullptr);
  std::string compile_output;
  char buffer[256];
  while (fgets(buffer, sizeof buffer, cc) != nullptr) compile_output += buffer;
  ASSERT_EQ(pclose(cc), 0) << "generated code failed to compile:\n"
                           << compile_output << "\n--- source ---\n"
                           << program;

  FILE* run = popen(binary.c_str(), "r");
  ASSERT_NE(run, nullptr);
  std::vector<Counters> actual;
  while (fgets(buffer, sizeof buffer, run) != nullptr) {
    Counters c{};
    ASSERT_EQ(std::sscanf(buffer, "%llu %llu %llu",
                          (unsigned long long*)&c.activations,
                          (unsigned long long*)&c.holds,
                          (unsigned long long*)&c.failures),
              3);
    actual.push_back(c);
  }
  ASSERT_EQ(pclose(run), 0);

  ASSERT_EQ(actual.size(), cases.size());
  for (size_t i = 0; i < cases.size(); ++i) {
    EXPECT_EQ(actual[i].activations, expected[i].activations) << cases[i].property;
    EXPECT_EQ(actual[i].holds, expected[i].holds) << cases[i].property;
    EXPECT_EQ(actual[i].failures, expected[i].failures) << cases[i].property;
  }
}

}  // namespace
}  // namespace repro::checker
