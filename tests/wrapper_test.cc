// Tests for the Sec. IV wrapper: instance pool sizing (lifetime), the
// evaluation table, reset/reuse, activation rules and the Fig. 5 scenario.
#include <gtest/gtest.h>

#include "checker/wrapper.h"
#include "psl/parser.h"

namespace repro::checker {
namespace {

psl::TlmProperty tlm(const std::string& text) {
  auto result = psl::parse_tlm_property(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.value();
}

void transaction(TlmCheckerWrapper& wrapper, psl::TimeNs time,
                 std::initializer_list<std::pair<const char*, uint64_t>> values) {
  MapContext ctx;
  for (const auto& [name, value] : values) ctx.set(name, value);
  wrapper.on_transaction(time, ctx);
}

// ---- Sec. IV point 1: allocation / lifetime ------------------------------------------

TEST(Wrapper, LifetimeMatchesPaperExample) {
  // q3 with eps = 170 and clock period 10: at most 17 instants where
  // transactions can occur in (t_fire, t_end] -> pool of 17 instances.
  TlmCheckerWrapper wrapper(tlm("q3: always (!ds || next_e[1,170](rdy)) @Tb"),
                            /*clock_period_ns=*/10);
  EXPECT_EQ(wrapper.lifetime(), 17u);
  EXPECT_EQ(wrapper.stats().pool_capacity, 17u);
}

TEST(Wrapper, UnboundedLifetimeForUntilProperties) {
  TlmCheckerWrapper wrapper(tlm("always (!ds || (!rdy until rdy)) @Tb"), 10);
  EXPECT_EQ(wrapper.lifetime(), 0u);
  EXPECT_EQ(wrapper.stats().pool_capacity, 0u);  // grows on demand
}

TEST(Wrapper, LifetimeUsesLongestPath) {
  TlmCheckerWrapper wrapper(
      tlm("always (!ds || (next_e[1,30](a) && next_e[2,50](b))) @Tb"), 10);
  EXPECT_EQ(wrapper.lifetime(), 5u);
}

TEST(Wrapper, LifetimeRoundsUpNonMultipleWindows) {
  // eps = 25 at a 10 ns clock: truncating division would size the pool at 2
  // and miss the instant covering the final partial period; the lifetime
  // must be ceil(25/10) = 3.
  const psl::TlmProperty q = tlm("always (!ds || next_e[1,25](rdy)) @Tb");
  TlmCheckerWrapper wrapper(q, /*clock_period_ns=*/10);
  EXPECT_EQ(wrapper.lifetime(), 3u);
  EXPECT_EQ(wrapper.stats().pool_capacity, 3u);

  const LifetimeInfo info = compute_lifetime(q.formula, 10);
  EXPECT_TRUE(info.bounded);
  EXPECT_EQ(info.instants, 3u);
  EXPECT_EQ(info.max_eps, 25u);
}

// ---- Sec. IV points 2-4: evaluation, reuse, activation ---------------------------------

TEST(Wrapper, PassingScenarioQ3) {
  TlmCheckerWrapper wrapper(tlm("always (!ds || next_e[1,170](rdy)) @Tb"), 10);
  transaction(wrapper, 100, {{"ds", 1}, {"rdy", 0}});
  transaction(wrapper, 110, {{"ds", 0}, {"rdy", 0}});
  transaction(wrapper, 270, {{"ds", 0}, {"rdy", 1}});
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 0u);
  EXPECT_EQ(wrapper.stats().activations, 3u);
  // All three sessions resolved: two trivially (ds low), one at 270 ns.
  EXPECT_EQ(wrapper.stats().holds, 3u);
}

TEST(Wrapper, MissedEvaluationPointRaisesFailureAtNextTransaction) {
  // Fig. 5: an instance expected at t_fire+170 whose instant passes without
  // a transaction fails when the next (later) transaction arrives.
  TlmCheckerWrapper wrapper(tlm("always (!ds || next_e[1,170](rdy)) @Tb"), 10);
  transaction(wrapper, 100, {{"ds", 1}, {"rdy", 0}});
  transaction(wrapper, 350, {{"ds", 0}, {"rdy", 1}});  // 270 was missed
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 1u);
  ASSERT_EQ(wrapper.failures().size(), 1u);
  EXPECT_EQ(wrapper.failures()[0].time, 350u);
}

TEST(Wrapper, EarlyTransactionsAreNotConsumed) {
  // Transactions before t_fire+eps must not consume the evaluation point.
  TlmCheckerWrapper wrapper(tlm("always (!ds || next_e[1,170](rdy)) @Tb"), 10);
  transaction(wrapper, 100, {{"ds", 1}, {"rdy", 0}});
  transaction(wrapper, 150, {{"ds", 0}, {"rdy", 0}});
  transaction(wrapper, 200, {{"ds", 0}, {"rdy", 0}});
  transaction(wrapper, 270, {{"ds", 0}, {"rdy", 1}});
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 0u);
}

TEST(Wrapper, InstancesAreRecycled) {
  TlmCheckerWrapper wrapper(tlm("always (!ds || next_e[1,20](rdy)) @Tb"), 10);
  // Many sessions, all trivially true: the pool (2 instances) must serve all
  // of them through reuse.
  for (int i = 0; i < 50; ++i) {
    transaction(wrapper, 10 * (i + 1), {{"ds", 0}, {"rdy", 0}});
  }
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().activations, 50u);
  EXPECT_EQ(wrapper.stats().pool_capacity, 2u);  // never grew
  EXPECT_GE(wrapper.stats().reuses, 48u);
}

TEST(Wrapper, EvaluationTableOnlyWakesDueInstances) {
  TlmCheckerWrapper wrapper(tlm("always (!ds || next_e[1,170](rdy)) @Tb"), 10);
  transaction(wrapper, 100, {{"ds", 1}, {"rdy", 0}});
  const uint64_t steps_after_firing = wrapper.stats().steps;
  // Early transactions: the scheduled instance must not be stepped at all.
  transaction(wrapper, 110, {{"ds", 0}, {"rdy", 0}});
  transaction(wrapper, 120, {{"ds", 0}, {"rdy", 0}});
  // Each early transaction costs exactly one step: the (trivially resolved)
  // new activation; the pending instance sleeps in the table.
  EXPECT_EQ(wrapper.stats().steps, steps_after_firing + 2);
  transaction(wrapper, 270, {{"ds", 0}, {"rdy", 1}});
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 0u);
}

TEST(Wrapper, TransactionContextGuardGatesActivation) {
  TlmCheckerWrapper wrapper(
      tlm("always (!ds || next_e[1,20](rdy)) @Tb && monitor_en"), 10);
  transaction(wrapper, 10, {{"ds", 1}, {"rdy", 0}, {"monitor_en", 0}});
  transaction(wrapper, 20, {{"ds", 0}, {"rdy", 0}, {"monitor_en", 1}});
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().activations, 1u);  // only the guarded-in event
}

TEST(Wrapper, DenseUntilInstancesSeeEveryTransaction) {
  TlmCheckerWrapper wrapper(tlm("always (!ds || (!rdy until rdy)) @Tb"), 10);
  transaction(wrapper, 10, {{"ds", 1}, {"rdy", 0}});
  transaction(wrapper, 20, {{"ds", 0}, {"rdy", 0}});
  transaction(wrapper, 30, {{"ds", 0}, {"rdy", 1}});
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 0u);
  EXPECT_EQ(wrapper.stats().holds, 3u);
}

TEST(Wrapper, DetectsWrongTlmImplementation) {
  // rdy arrives on time but out is 0: the data check fails.
  TlmCheckerWrapper wrapper(
      tlm("always (!ds || next_e[1,30](out != 0)) @Tb"), 10);
  transaction(wrapper, 10, {{"ds", 1}, {"out", 0}});
  transaction(wrapper, 40, {{"ds", 0}, {"out", 0}});
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 1u);
}

TEST(Wrapper, UncompletedInstancesAreNotFailures) {
  TlmCheckerWrapper wrapper(tlm("always (!ds || next_e[1,170](rdy)) @Tb"), 10);
  transaction(wrapper, 100, {{"ds", 1}, {"rdy", 0}});
  wrapper.finish();  // simulation ends before the evaluation point
  EXPECT_EQ(wrapper.stats().failures, 0u);
  EXPECT_EQ(wrapper.stats().holds, 1u);  // weakly satisfied at truncation
}

TEST(Wrapper, EventuallyStrongFailsAtFinish) {
  TlmCheckerWrapper wrapper(tlm("always (!ds || eventually! rdy) @Tb"), 10);
  transaction(wrapper, 10, {{"ds", 1}, {"rdy", 0}});
  transaction(wrapper, 20, {{"ds", 0}, {"rdy", 0}});
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 1u);
}

TEST(Wrapper, MissedDeadlineStrictlyBeforeNextTransaction) {
  // Two pending instances with different deadlines; the next transaction
  // arrives after the earlier deadline but exactly on the later one. Only
  // the earlier instance missed its evaluation point.
  TlmCheckerWrapper wrapper(tlm("always (!ds || next_e[1,40](rdy)) @Tb"), 10);
  transaction(wrapper, 100, {{"ds", 1}, {"rdy", 0}});  // deadline 140
  transaction(wrapper, 150, {{"ds", 1}, {"rdy", 0}});  // 140 missed; dl 190
  transaction(wrapper, 190, {{"ds", 0}, {"rdy", 1}});  // 190 met on time
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 1u);
  ASSERT_EQ(wrapper.failures().size(), 1u);
  // The miss is detected (and logged) at the transaction that exposed it.
  EXPECT_EQ(wrapper.failures()[0].time, 150u);
  EXPECT_EQ(wrapper.stats().holds, 2u);  // the on-time instance + trivial
}

TEST(Wrapper, EndOfSimDenseFailureLoggedAtLastEventTime) {
  // A strong obligation that fails at end-of-sim must be attributed to the
  // last observed transaction time, not t=0.
  TlmCheckerWrapper wrapper(tlm("always (!ds || eventually! rdy) @Tb"), 10);
  transaction(wrapper, 10, {{"ds", 1}, {"rdy", 0}});
  transaction(wrapper, 250, {{"ds", 0}, {"rdy", 0}});
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 1u);
  ASSERT_EQ(wrapper.failures().size(), 1u);
  EXPECT_EQ(wrapper.failures()[0].time, 250u);
}

TEST(Wrapper, EndOfSimTableFailureNotReportedAfterLastEvent) {
  // A scheduled instance whose deadline (60) lies beyond the end of the
  // trace and that resolves false at finish() must not be reported at a
  // time later than the last observed transaction.
  TlmCheckerWrapper wrapper(tlm("q: always (!ds || !next_e[1,50](rdy)) @Tb"),
                            10);
  transaction(wrapper, 10, {{"ds", 1}, {"rdy", 0}});
  wrapper.finish();  // next_e resolves weakly true; the negation fails
  EXPECT_EQ(wrapper.stats().failures, 1u);
  ASSERT_EQ(wrapper.failures().size(), 1u);
  EXPECT_EQ(wrapper.failures()[0].time, 10u);
}

TEST(Wrapper, UnboundedFreePoolIsCappedAtActiveHighWaterMark) {
  // Until-based property: the pool must not retain more instances than were
  // ever concurrently active. Sequence engineered so a retirement would
  // overflow the cap: instance A goes dense (peak_active = 1), a second
  // instance resolves trivially and is pooled, then A retires into an
  // already-full pool and must be dropped.
  TlmCheckerWrapper wrapper(tlm("always (!ds || (!rdy until rdy)) @Tb"), 10);
  transaction(wrapper, 10, {{"ds", 1}, {"rdy", 0}});  // A allocated, dense
  EXPECT_EQ(wrapper.stats().pool_capacity, 1u);
  transaction(wrapper, 20, {{"ds", 0}, {"rdy", 0}});  // B allocated, trivial
  EXPECT_EQ(wrapper.stats().pool_capacity, 2u);
  transaction(wrapper, 30, {{"ds", 0}, {"rdy", 1}});  // A resolves: dropped
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().failures, 0u);
  EXPECT_EQ(wrapper.stats().pool_dropped, 1u);
  // Live instances (pooled, nothing active) match the high-water mark.
  EXPECT_EQ(wrapper.stats().pool_capacity, 1u);
}

TEST(Wrapper, BoundedPoolIsNeverDropped) {
  // Time-scheduled properties keep their statically sized pool.
  TlmCheckerWrapper wrapper(tlm("always (!ds || next_e[1,20](rdy)) @Tb"), 10);
  for (int i = 0; i < 20; ++i) {
    transaction(wrapper, 10 * (i + 1), {{"ds", 0}, {"rdy", 0}});
  }
  wrapper.finish();
  EXPECT_EQ(wrapper.stats().pool_dropped, 0u);
  EXPECT_EQ(wrapper.stats().pool_capacity, 2u);
}

TEST(Wrapper, TablePeakTracksConcurrentScheduledInstances) {
  TlmCheckerWrapper wrapper(tlm("always (!ds || next_e[1,170](rdy)) @Tb"), 10);
  for (int i = 0; i < 5; ++i) {
    transaction(wrapper, 10 * (i + 1), {{"ds", 1}, {"rdy", 0}});
  }
  EXPECT_EQ(wrapper.stats().table_peak, 5u);
  wrapper.finish();
}

}  // namespace
}  // namespace repro::checker
