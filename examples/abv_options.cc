#include "abv_options.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "support/strutil.h"

namespace repro::examples {

void print_usage(const char* argv0, const char* extra_usage) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--batch-size N] [--max-inflight N]\n"
               "          [--witness-depth N] [--failure-log-cap N]\n"
               "          [--trace-out FILE] [--report-out FILE]\n"
               "          [--metrics-out FILE] [--metrics-interval N]\n"
               "          [--dump-passes] [--interpreter] [--no-vectorize]\n"
               "          %s[--analyze] [--Werror-analysis]\n"
               "          [--prune off|safe|aggressive] [--prune-plan-out FILE]\n"
               "          [--symbolic-budget N] [--record-out FILE]\n"
               "          [--replay FILE]\n",
               argv0, extra_usage);
}

AbvOptions parse_abv_options(int argc, char** argv,
                             const std::vector<ExtraFlag>& extra,
                             const char* extra_usage) {
  AbvOptions o;
  bool batching_flags_used = false;
  for (int i = 1; i < argc; ++i) {
    // Strict numeric arguments: garbage ("abc", "64k", "-1") is a usage
    // error, not a silent 0.
    auto size_arg = [&](size_t& out) {
      const std::optional<size_t> parsed = repro::parse_size(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "%s: bad numeric value '%s' for %s\n", argv[0],
                     argv[i], argv[i - 1]);
        print_usage(argv[0], extra_usage);
        std::exit(2);
      }
      out = *parsed;
    };
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      size_arg(o.jobs);
      if (o.jobs == 0) o.jobs = 1;  // 0: serial
    } else if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
      size_arg(o.batch_size);
      if (o.batch_size == 0) o.batch_size = 1;
      batching_flags_used = true;
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      size_arg(o.max_inflight);
      if (o.max_inflight == 0) o.max_inflight = 1;
      batching_flags_used = true;
    } else if (std::strcmp(argv[i], "--witness-depth") == 0 && i + 1 < argc) {
      size_arg(o.witness_depth);
    } else if (std::strcmp(argv[i], "--failure-log-cap") == 0 && i + 1 < argc) {
      size_arg(o.failure_log_cap);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      o.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--report-out") == 0 && i + 1 < argc) {
      o.report_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      o.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0 &&
               i + 1 < argc) {
      size_arg(o.metrics_interval);
    } else if (std::strcmp(argv[i], "--dump-passes") == 0) {
      o.dump_passes = true;
    } else if (std::strcmp(argv[i], "--interpreter") == 0) {
      o.interpreter = true;
    } else if (std::strcmp(argv[i], "--no-vectorize") == 0) {
      o.vectorized = false;
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      if (o.analysis == models::AnalysisMode::kOff) {
        o.analysis = models::AnalysisMode::kOn;
      }
    } else if (std::strcmp(argv[i], "--Werror-analysis") == 0) {
      o.analysis = models::AnalysisMode::kError;
    } else if (std::strcmp(argv[i], "--prune") == 0 && i + 1 < argc) {
      if (!analysis::parse_prune_mode(argv[++i], o.prune)) {
        std::fprintf(stderr,
                     "bad --prune value '%s' (want off, safe or aggressive)\n",
                     argv[i]);
        print_usage(argv[0], extra_usage);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--prune-plan-out") == 0 && i + 1 < argc) {
      o.prune_plan_out = argv[++i];
    } else if (std::strcmp(argv[i], "--symbolic-budget") == 0 && i + 1 < argc) {
      const std::optional<uint64_t> parsed = repro::parse_u64(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(
            stderr,
            "bad --symbolic-budget value '%s' (want a non-negative integer)\n",
            argv[i]);
        print_usage(argv[0], extra_usage);
        std::exit(2);
      }
      o.symbolic_budget = static_cast<size_t>(*parsed);
    } else if (std::strcmp(argv[i], "--record-out") == 0 && i + 1 < argc) {
      o.record_out = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      o.replay = argv[++i];
    } else {
      bool matched = false;
      for (const ExtraFlag& flag : extra) {
        if (std::strcmp(argv[i], flag.name) == 0) {
          *flag.value = true;
          matched = true;
          break;
        }
      }
      if (!matched) {
        print_usage(argv[0], extra_usage);
        std::exit(2);
      }
    }
  }

  if (batching_flags_used && o.jobs == 1) {
    // SIZ-style sizing note, mirroring the analysis layer's tone: the
    // serial path evaluates records synchronously and never batches.
    std::fprintf(stderr,
                 "note: --batch-size/--max-inflight have no effect at "
                 "--jobs 1 (serial engine path never batches)\n");
  }
  return o;
}

void apply(const AbvOptions& options, models::RunConfig& config) {
  config.engine = {.jobs = options.jobs,
                   .batch_size = options.batch_size,
                   .max_inflight_batches = options.max_inflight,
                   .vectorized = options.vectorized};
  config.observability.witness_depth = options.witness_depth;
  config.observability.failure_log_cap = options.failure_log_cap;
  config.compiled_checkers = !options.interpreter;
  config.analysis = options.analysis;
  config.analysis.prune = options.prune;
  config.analysis.symbolic_budget = options.symbolic_budget;
  config.ingest.record_path = options.record_out;
  config.ingest.replay_path = options.replay;
}

}  // namespace repro::examples
