// colorconv_abv: ColorConv flow, including failure detection on a buggy
// TLM model.
//
// Part 1 runs the 12-property suite at RTL, TLM-CA and TLM-AT and shows all
// properties passing. Part 2 injects a bug into a copy of the abstracted
// checker environment — it replays the correct transaction stream but with a
// corrupted luminance value — to show that the abstracted checkers actually
// catch wrong TLM implementations (the purpose of the whole flow), and that
// the failure verdict carries a witness ring of the transactions leading up
// to it.
//
// Usage: colorconv_abv [--jobs N] [--batch-size N] [--max-inflight N]
//                      [--witness-depth N] [--failure-log-cap N]
//                      [--trace-out FILE] [--report-out FILE]
//                      [--metrics-out FILE] [--metrics-interval N]
//                      [--dump-passes] [--interpreter] [--no-vectorize]
//                      [--record-out FILE] [--replay FILE]
//   --metrics-out FILE  stream JSONL metrics/coverage snapshots of the TLM-AT
//                       run (validate with tools/validate_metrics.py).
//   --metrics-interval N
//                       records between two mid-run snapshot lines (default
//                       256; 0 = only the final line).
//   --dump-passes       print every rewrite-pipeline pass per property before
//                       the runs.
//   --interpreter       evaluate checkers with the tree-walking interpreter
//                       instead of the compiled flat programs.
//   --no-vectorize      keep the compiled backend scalar: disable the 64-wide
//                       lockstep kernel (reports are byte-identical either
//                       way; only speed differs).
//   --analyze           run the static property analysis before each run and
//                       print its diagnostics.
//   --Werror-analysis   like --analyze, but abort (exit 1) without simulating
//                       when the analysis reports an error.
//   --prune MODE        analysis-guided runtime pruning (off|safe|aggressive,
//                       default off): elide statically-decided properties and
//                       derive subsumed verdicts from their subsumer's
//                       checker. Verdicts are unchanged; with
//                       --Werror-analysis pruned checkers still run and every
//                       derived verdict is cross-checked (PRN003).
//   --prune-plan-out FILE  write the machine-readable prune plan JSON
//                       (TLM-AT run).
//   --symbolic-budget N symbolic bounded trajectory evaluation feeding the
//                       prune planner (analysis/symbolic.h): elide-grade
//                       never-fails proofs beyond the structural prover and
//                       parity-gated dead-node program folds. 0 = off
//                       (default).
//   --record-out FILE   serialize the checked record stream of the TLM-AT run
//                       as a versioned trace log (support::tracelog; binary,
//                       or JSONL for .jsonl paths).
//   --replay FILE       no simulation: replay the trace log recorded at FILE
//                       through the checker configuration of its meta (design
//                       must be ColorConv; level picks the RTL, TLM-CA or
//                       TLM-AT environment). Reports are byte-identical to
//                       the recording run (timing excluded).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "abv_options.h"
#include "analysis/prune.h"
#include "checker/wrapper.h"
#include "models/colorconv/colorconv_core.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "rewrite/methodology.h"
#include "support/tracelog.h"

using namespace repro;
using examples::AbvOptions;
using models::Design;
using models::Level;

namespace {

// Replays a tiny handmade stream against the abstracted c2 checker
// ("y <= 235 eight cycles after every pixel"), with a deliberately wrong y.
// Returns true when the checker both fails and logs the failure with a
// non-empty witness ring.
bool buggy_model_is_caught() {
  const models::PropertySuite suite = models::colorconv_suite();
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  // c2 is the second property of the suite.
  rewrite::AbstractionOutcome outcome =
      rewrite::abstract_property(suite.properties[1], options);
  checker::TlmCheckerWrapper wrapper(*outcome.property, suite.clock_period_ns);

  auto transaction = [&](psl::TimeNs t, bool ds, uint64_t y) {
    checker::MapContext values;
    values.set("ds", ds ? 1 : 0);
    values.set("r", 10);
    values.set("g", 20);
    values.set("b", 30);
    values.set("sof", 0);
    values.set("rdy", ds ? 0 : 1);
    values.set("y", y);
    values.set("cb", 128);
    values.set("cr", 128);
    wrapper.on_transaction(t, values);
  };
  transaction(100, true, 0);    // pixel accepted
  transaction(180, false, 255); // result 8 cycles later: y out of range!
  wrapper.finish();
  if (wrapper.stats().failures == 0 || wrapper.failures().empty()) return false;
  const checker::Failure& failure = wrapper.failures().front();
  std::printf("witness ring at the verdict (%zu transaction%s):\n",
              failure.witness.size(), failure.witness.size() == 1 ? "" : "s");
  for (const checker::WitnessEntry& entry : failure.witness) {
    std::printf("  t=%4llu ns:", static_cast<unsigned long long>(entry.time));
    if (entry.observables != nullptr) {
      for (const auto& [name, value] : *entry.observables) {
        std::printf(" %s=%llu", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
    std::printf("\n");
  }
  return !failure.witness.empty();
}

// --replay: no simulation. The log's meta picks the environment; the checker
// configuration mirrors the live flow's, so the replayed report matches the
// recording run's.
int run_replay(const char* argv0, const AbvOptions& opts) {
  tlm::RecordStreamMeta meta;
  if (auto err = support::tracelog::read_meta(opts.replay, meta)) {
    std::fprintf(stderr, "%s: cannot replay '%s': %s\n", argv0,
                 opts.replay.c_str(), err->to_string().c_str());
    return 2;
  }
  Design design;
  Level level;
  if (!models::parse_design(meta.design, design) ||
      design != Design::kColorConv || !models::parse_level(meta.level, level)) {
    std::fprintf(
        stderr,
        "%s: trace log '%s' records a %s/%s stream, not a ColorConv run\n",
        argv0, opts.replay.c_str(), meta.design.c_str(), meta.level.c_str());
    return 2;
  }

  const models::PropertySuite suite = models::colorconv_suite();
  models::RunConfig config;
  config.design = Design::kColorConv;
  config.level = level;
  config.workload = 2000;
  config.checkers = suite.properties.size();
  examples::apply(opts, config);
  if (level == Level::kTlmAt) {
    config.observability.trace_path = opts.trace_out;
    config.observability.metrics_path = opts.metrics_out;
    config.observability.metrics_interval = opts.metrics_interval;
    config.observability.prune_plan_path = opts.prune_plan_out;
  }

  std::printf("== ColorConv replay: %s (%s, clock %llu ns) ==\n",
              opts.replay.c_str(), meta.level.c_str(),
              static_cast<unsigned long long>(meta.clock_period_ns));
  const models::RunResult r = models::run_simulation(config);
  if (!r.ingest_error.empty()) {
    std::fprintf(stderr, "%s: %s\n", argv0, r.ingest_error.c_str());
    return 2;
  }
  if (config.analysis != models::AnalysisMode::kOff &&
      !r.analysis_diagnostics.empty()) {
    std::printf("-- static analysis (replay) --\n");
    for (const analysis::Diagnostic& d : r.analysis_diagnostics) {
      std::printf("%s\n", analysis::to_string(d).c_str());
    }
  }
  if (config.analysis == models::AnalysisMode::kError && !r.analysis_ok) {
    std::printf("analysis errors: replay skipped\n");
    return 1;
  }
  std::printf("%-7s: %llu records replayed  properties=%s\n", meta.level.c_str(),
              static_cast<unsigned long long>(r.transactions),
              r.properties_ok ? "ok" : "FAIL");
  std::printf("\nper-property results:\n");
  r.report.print(std::cout);
  if (!opts.report_out.empty()) {
    abv::ReportTiming timing;
    timing.wall_seconds = r.wall_seconds;
    timing.jobs = opts.jobs;
    timing.records = r.transactions;
    timing.metrics = r.metrics;
    std::ofstream out(opts.report_out);
    if (!out) {
      std::fprintf(stderr, "cannot write report to %s\n",
                   opts.report_out.c_str());
      return 1;
    }
    r.report.write_json(out, &timing);
    std::printf("JSON report written to %s\n", opts.report_out.c_str());
  }
  return r.properties_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const AbvOptions opts = examples::parse_abv_options(argc, argv);

  if (!opts.replay.empty()) return run_replay(argv[0], opts);

  const models::PropertySuite suite = models::colorconv_suite();
  const size_t kPixels = 2000;

  if (opts.dump_passes) {
    std::printf("== ColorConv property abstraction ==\n");
    rewrite::AbstractionOptions options;
    options.clock_period_ns = suite.clock_period_ns;
    options.abstracted_signals = suite.abstracted_signals;
    const std::vector<rewrite::AbstractionOutcome> outcomes =
        rewrite::abstract_suite(suite.properties, options);
    for (size_t i = 0; i < suite.properties.size(); ++i) {
      std::printf("%-4s %s\n", suite.properties[i].name.c_str(),
                  psl::to_string(suite.properties[i]).c_str());
      std::fputs(rewrite::format_passes(outcomes[i].passes).c_str(), stdout);
    }
    std::printf("\n");
  }

  std::printf("== ColorConv: %zu pixels, %zu properties, %zu evaluation job%s ==\n",
              kPixels, suite.properties.size(), opts.jobs,
              opts.jobs == 1 ? "" : "s");
  models::RunConfig config;
  config.design = Design::kColorConv;
  config.workload = kPixels;
  config.checkers = suite.properties.size();
  examples::apply(opts, config);

  bool all_ok = true;
  for (Level level : {Level::kRtl, Level::kTlmCa, Level::kTlmAt}) {
    config.level = level;
    // Observability outputs cover the TLM-AT run (the paper's target level).
    config.observability.trace_path =
        level == Level::kTlmAt ? opts.trace_out : "";
    config.observability.metrics_path =
        level == Level::kTlmAt ? opts.metrics_out : "";
    config.observability.metrics_interval = opts.metrics_interval;
    config.observability.prune_plan_path =
        level == Level::kTlmAt ? opts.prune_plan_out : "";
    // So does the trace log (--record-out).
    config.ingest.record_path = level == Level::kTlmAt ? opts.record_out : "";
    const models::RunResult r = models::run_simulation(config);
    if (!r.ingest_error.empty()) {
      std::fprintf(stderr, "%s: %s\n", argv[0], r.ingest_error.c_str());
      return 2;
    }
    if (opts.analysis != models::AnalysisMode::kOff &&
        !r.analysis_diagnostics.empty()) {
      std::printf("-- static analysis (%s) --\n", models::to_string(level));
      for (const analysis::Diagnostic& d : r.analysis_diagnostics) {
        std::printf("%s\n", analysis::to_string(d).c_str());
      }
    }
    if (opts.analysis == models::AnalysisMode::kError && !r.analysis_ok) {
      std::printf("analysis errors: %s simulation skipped\n",
                  models::to_string(level));
      return 1;
    }
    std::printf("%-7s: %7.3f s  functional=%s properties=%s\n",
                models::to_string(level), r.wall_seconds,
                r.functional_ok ? "ok" : "FAIL",
                r.properties_ok ? "ok" : "FAIL");
    all_ok = all_ok && r.functional_ok && r.properties_ok;
    if (level == Level::kTlmAt) {
      if (opts.prune != analysis::PruneMode::kOff) {
        std::printf("prune plan (%s): %zu live, %zu elided, %zu subsumed\n",
                    analysis::to_string(r.prune_plan.mode),
                    r.prune_plan.live(), r.prune_plan.elided(),
                    r.prune_plan.subsumed());
      }
      std::printf("\nper-property results at TLM-AT:\n");
      r.report.print(std::cout);
      if (!opts.report_out.empty()) {
        abv::ReportTiming timing;
        timing.wall_seconds = r.wall_seconds;
        timing.jobs = opts.jobs;
        timing.records = r.transactions;
        timing.metrics = r.metrics;
        std::ofstream out(opts.report_out);
        if (!out) {
          std::fprintf(stderr, "cannot write report to %s\n",
                       opts.report_out.c_str());
          return 1;
        }
        r.report.write_json(out, &timing);
        std::printf("JSON report written to %s\n", opts.report_out.c_str());
      }
      if (!opts.trace_out.empty()) {
        std::printf("Chrome trace written to %s\n", opts.trace_out.c_str());
      }
      if (!opts.metrics_out.empty()) {
        std::printf("JSONL metrics snapshots written to %s\n",
                    opts.metrics_out.c_str());
      }
      if (!opts.record_out.empty()) {
        std::printf("trace log written to %s\n", opts.record_out.c_str());
      }
    }
  }

  std::printf("\n== failure injection ==\n");
  const bool caught = buggy_model_is_caught();
  std::printf("buggy TLM model caught by abstracted checker (with witness): %s\n",
              caught ? "yes" : "NO (problem!)");
  return (all_ok && caught) ? 0 : 1;
}
