// colorconv_abv: ColorConv flow, including failure detection on a buggy
// TLM model.
//
// Part 1 runs the 12-property suite at RTL, TLM-CA and TLM-AT and shows all
// properties passing. Part 2 injects a bug into a copy of the abstracted
// checker environment — it replays the correct transaction stream but with a
// corrupted luminance value — to show that the abstracted checkers actually
// catch wrong TLM implementations (the purpose of the whole flow), and that
// the failure verdict carries a witness ring of the transactions leading up
// to it.
//
// Usage: colorconv_abv [--jobs N] [--batch-size N] [--max-inflight N]
//                      [--witness-depth N] [--failure-log-cap N]
//                      [--trace-out FILE] [--report-out FILE]
//                      [--metrics-out FILE] [--metrics-interval N]
//                      [--dump-passes] [--interpreter] [--no-vectorize]
//   --metrics-out FILE  stream JSONL metrics/coverage snapshots of the TLM-AT
//                       run (validate with tools/validate_metrics.py).
//   --metrics-interval N
//                       records between two mid-run snapshot lines (default
//                       256; 0 = only the final line).
//   --dump-passes       print every rewrite-pipeline pass per property before
//                       the runs.
//   --interpreter       evaluate checkers with the tree-walking interpreter
//                       instead of the compiled flat programs.
//   --no-vectorize      keep the compiled backend scalar: disable the 64-wide
//                       lockstep kernel (reports are byte-identical either
//                       way; only speed differs).
//   --analyze           run the static property analysis before each run and
//                       print its diagnostics.
//   --Werror-analysis   like --analyze, but abort (exit 1) without simulating
//                       when the analysis reports an error.
//   --prune MODE        analysis-guided runtime pruning (off|safe|aggressive,
//                       default off): elide statically-decided properties and
//                       derive subsumed verdicts from their subsumer's
//                       checker. Verdicts are unchanged; with
//                       --Werror-analysis pruned checkers still run and every
//                       derived verdict is cross-checked (PRN003).
//   --prune-plan-out FILE  write the machine-readable prune plan JSON
//                       (TLM-AT run).
//   --symbolic-budget N symbolic bounded trajectory evaluation feeding the
//                       prune planner (analysis/symbolic.h): elide-grade
//                       never-fails proofs beyond the structural prover and
//                       parity-gated dead-node program folds. 0 = off
//                       (default).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "checker/wrapper.h"
#include "models/colorconv/colorconv_core.h"
#include "analysis/prune.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "rewrite/methodology.h"
#include "support/strutil.h"

using namespace repro;
using models::Design;
using models::Level;

namespace {

// Replays a tiny handmade stream against the abstracted c2 checker
// ("y <= 235 eight cycles after every pixel"), with a deliberately wrong y.
// Returns true when the checker both fails and logs the failure with a
// non-empty witness ring.
bool buggy_model_is_caught() {
  const models::PropertySuite suite = models::colorconv_suite();
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  // c2 is the second property of the suite.
  rewrite::AbstractionOutcome outcome =
      rewrite::abstract_property(suite.properties[1], options);
  checker::TlmCheckerWrapper wrapper(*outcome.property, suite.clock_period_ns);

  auto transaction = [&](psl::TimeNs t, bool ds, uint64_t y) {
    checker::MapContext values;
    values.set("ds", ds ? 1 : 0);
    values.set("r", 10);
    values.set("g", 20);
    values.set("b", 30);
    values.set("sof", 0);
    values.set("rdy", ds ? 0 : 1);
    values.set("y", y);
    values.set("cb", 128);
    values.set("cr", 128);
    wrapper.on_transaction(t, values);
  };
  transaction(100, true, 0);    // pixel accepted
  transaction(180, false, 255); // result 8 cycles later: y out of range!
  wrapper.finish();
  if (wrapper.stats().failures == 0 || wrapper.failures().empty()) return false;
  const checker::Failure& failure = wrapper.failures().front();
  std::printf("witness ring at the verdict (%zu transaction%s):\n",
              failure.witness.size(), failure.witness.size() == 1 ? "" : "s");
  for (const checker::WitnessEntry& entry : failure.witness) {
    std::printf("  t=%4llu ns:", static_cast<unsigned long long>(entry.time));
    if (entry.observables != nullptr) {
      for (const auto& [name, value] : *entry.observables) {
        std::printf(" %s=%llu", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
    std::printf("\n");
  }
  return !failure.witness.empty();
}

}  // namespace

int main(int argc, char** argv) {
  size_t jobs = 1;
  size_t batch_size = 64;
  size_t max_inflight = 2;
  size_t witness_depth = 8;
  size_t failure_log_cap = 64;
  bool batching_flags_used = false;
  std::string trace_out;
  std::string report_out;
  std::string metrics_out;
  size_t metrics_interval = 256;
  bool dump_passes = false;
  bool interpreter = false;
  bool vectorized = true;
  models::AnalysisMode analysis = models::AnalysisMode::kOff;
  analysis::PruneMode prune = analysis::PruneMode::kOff;
  std::string prune_plan_out;
  size_t symbolic_budget = 0;
  auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s [--jobs N] [--batch-size N] [--max-inflight N]\n"
                 "          [--witness-depth N] [--failure-log-cap N]\n"
                 "          [--trace-out FILE] [--report-out FILE]\n"
                 "          [--metrics-out FILE] [--metrics-interval N]\n"
                 "          [--dump-passes] [--interpreter] [--no-vectorize]\n"
                 "          [--analyze] [--Werror-analysis]\n"
                 "          [--prune off|safe|aggressive] [--prune-plan-out FILE]\n"
               "          [--symbolic-budget N]\n",
                 argv[0]);
  };
  for (int i = 1; i < argc; ++i) {
    // Strict numeric arguments: garbage ("abc", "64k", "-1") is a usage
    // error, not a silent 0.
    auto size_arg = [&](size_t& out) {
      const std::optional<size_t> parsed = repro::parse_size(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "%s: bad numeric value '%s' for %s\n", argv[0],
                     argv[i], argv[i - 1]);
        usage();
        std::exit(2);
      }
      out = *parsed;
    };
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      size_arg(jobs);
      if (jobs == 0) jobs = 1;  // 0: serial
    } else if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
      size_arg(batch_size);
      if (batch_size == 0) batch_size = 1;
      batching_flags_used = true;
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      size_arg(max_inflight);
      if (max_inflight == 0) max_inflight = 1;
      batching_flags_used = true;
    } else if (std::strcmp(argv[i], "--witness-depth") == 0 && i + 1 < argc) {
      size_arg(witness_depth);
    } else if (std::strcmp(argv[i], "--failure-log-cap") == 0 && i + 1 < argc) {
      size_arg(failure_log_cap);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--report-out") == 0 && i + 1 < argc) {
      report_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0 && i + 1 < argc) {
      size_arg(metrics_interval);
    } else if (std::strcmp(argv[i], "--dump-passes") == 0) {
      dump_passes = true;
    } else if (std::strcmp(argv[i], "--interpreter") == 0) {
      interpreter = true;
    } else if (std::strcmp(argv[i], "--no-vectorize") == 0) {
      vectorized = false;
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      if (analysis == models::AnalysisMode::kOff) {
        analysis = models::AnalysisMode::kOn;
      }
    } else if (std::strcmp(argv[i], "--Werror-analysis") == 0) {
      analysis = models::AnalysisMode::kError;
    } else if (std::strcmp(argv[i], "--prune") == 0 && i + 1 < argc) {
      if (!analysis::parse_prune_mode(argv[++i], prune)) {
        std::fprintf(stderr,
                     "bad --prune value '%s' (want off, safe or aggressive)\n",
                     argv[i]);
        usage();
        return 2;
      }
    } else if (std::strcmp(argv[i], "--prune-plan-out") == 0 && i + 1 < argc) {
      prune_plan_out = argv[++i];
    } else if (std::strcmp(argv[i], "--symbolic-budget") == 0 && i + 1 < argc) {
      const std::optional<uint64_t> parsed = repro::parse_u64(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(
            stderr,
            "bad --symbolic-budget value '%s' (want a non-negative integer)\n",
            argv[i]);
        usage();
        return 2;
      }
      symbolic_budget = static_cast<size_t>(*parsed);
    } else {
      usage();
      return 2;
    }
  }
  if (batching_flags_used && jobs == 1) {
    // SIZ-style sizing note, mirroring the analysis layer's tone: the
    // serial path evaluates records synchronously and never batches.
    std::fprintf(stderr,
                 "note: --batch-size/--max-inflight have no effect at "
                 "--jobs 1 (serial engine path never batches)\n");
  }

  const models::PropertySuite suite = models::colorconv_suite();
  const size_t kPixels = 2000;

  if (dump_passes) {
    std::printf("== ColorConv property abstraction ==\n");
    rewrite::AbstractionOptions options;
    options.clock_period_ns = suite.clock_period_ns;
    options.abstracted_signals = suite.abstracted_signals;
    const std::vector<rewrite::AbstractionOutcome> outcomes =
        rewrite::abstract_suite(suite.properties, options);
    for (size_t i = 0; i < suite.properties.size(); ++i) {
      std::printf("%-4s %s\n", suite.properties[i].name.c_str(),
                  psl::to_string(suite.properties[i]).c_str());
      std::fputs(rewrite::format_passes(outcomes[i].passes).c_str(), stdout);
    }
    std::printf("\n");
  }

  std::printf("== ColorConv: %zu pixels, %zu properties, %zu evaluation job%s ==\n",
              kPixels, suite.properties.size(), jobs, jobs == 1 ? "" : "s");
  models::RunConfig config;
  config.design = Design::kColorConv;
  config.workload = kPixels;
  config.checkers = suite.properties.size();
  config.engine = {.jobs = jobs,
                   .batch_size = batch_size,
                   .max_inflight_batches = max_inflight,
                   .vectorized = vectorized};
  config.observability.witness_depth = witness_depth;
  config.observability.failure_log_cap = failure_log_cap;
  config.compiled_checkers = !interpreter;
  config.analysis = analysis;
  config.analysis.prune = prune;
  config.analysis.symbolic_budget = symbolic_budget;

  bool all_ok = true;
  for (Level level : {Level::kRtl, Level::kTlmCa, Level::kTlmAt}) {
    config.level = level;
    // Observability outputs cover the TLM-AT run (the paper's target level).
    config.observability.trace_path = level == Level::kTlmAt ? trace_out : "";
    config.observability.metrics_path =
        level == Level::kTlmAt ? metrics_out : "";
    config.observability.metrics_interval = metrics_interval;
    config.observability.prune_plan_path =
        level == Level::kTlmAt ? prune_plan_out : "";
    const models::RunResult r = models::run_simulation(config);
    if (analysis != models::AnalysisMode::kOff &&
        !r.analysis_diagnostics.empty()) {
      std::printf("-- static analysis (%s) --\n", models::to_string(level));
      for (const analysis::Diagnostic& d : r.analysis_diagnostics) {
        std::printf("%s\n", analysis::to_string(d).c_str());
      }
    }
    if (analysis == models::AnalysisMode::kError && !r.analysis_ok) {
      std::printf("analysis errors: %s simulation skipped\n",
                  models::to_string(level));
      return 1;
    }
    std::printf("%-7s: %7.3f s  functional=%s properties=%s\n",
                models::to_string(level), r.wall_seconds,
                r.functional_ok ? "ok" : "FAIL",
                r.properties_ok ? "ok" : "FAIL");
    all_ok = all_ok && r.functional_ok && r.properties_ok;
    if (level == Level::kTlmAt) {
      if (prune != analysis::PruneMode::kOff) {
        std::printf("prune plan (%s): %zu live, %zu elided, %zu subsumed\n",
                    analysis::to_string(r.prune_plan.mode),
                    r.prune_plan.live(), r.prune_plan.elided(),
                    r.prune_plan.subsumed());
      }
      std::printf("\nper-property results at TLM-AT:\n");
      r.report.print(std::cout);
      if (!report_out.empty()) {
        abv::ReportTiming timing;
        timing.wall_seconds = r.wall_seconds;
        timing.jobs = jobs;
        timing.records = r.transactions;
        timing.metrics = r.metrics;
        std::ofstream out(report_out);
        if (!out) {
          std::fprintf(stderr, "cannot write report to %s\n", report_out.c_str());
          return 1;
        }
        r.report.write_json(out, &timing);
        std::printf("JSON report written to %s\n", report_out.c_str());
      }
      if (!trace_out.empty()) {
        std::printf("Chrome trace written to %s\n", trace_out.c_str());
      }
      if (!metrics_out.empty()) {
        std::printf("JSONL metrics snapshots written to %s\n",
                    metrics_out.c_str());
      }
    }
  }

  std::printf("\n== failure injection ==\n");
  const bool caught = buggy_model_is_caught();
  std::printf("buggy TLM model caught by abstracted checker (with witness): %s\n",
              caught ? "yes" : "NO (problem!)");
  return (all_ok && caught) ? 0 : 1;
}
