// colorconv_abv: ColorConv flow, including failure detection on a buggy
// TLM model.
//
// Part 1 runs the 12-property suite at RTL, TLM-CA and TLM-AT and shows all
// properties passing. Part 2 injects a bug into a copy of the abstracted
// checker environment — it replays the correct transaction stream but with a
// corrupted luminance value — to show that the abstracted checkers actually
// catch wrong TLM implementations (the purpose of the whole flow).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "checker/wrapper.h"
#include "models/colorconv/colorconv_core.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "rewrite/methodology.h"

using namespace repro;
using models::Design;
using models::Level;

namespace {

// Replays a tiny handmade stream against the abstracted c2 checker
// ("y <= 235 eight cycles after every pixel"), with a deliberately wrong y.
bool buggy_model_is_caught() {
  const models::PropertySuite suite = models::colorconv_suite();
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  // c2 is the second property of the suite.
  rewrite::AbstractionOutcome outcome =
      rewrite::abstract_property(suite.properties[1], options);
  checker::TlmCheckerWrapper wrapper(*outcome.property, suite.clock_period_ns);

  auto transaction = [&](psl::TimeNs t, bool ds, uint64_t y) {
    checker::MapContext values;
    values.set("ds", ds ? 1 : 0);
    values.set("r", 10);
    values.set("g", 20);
    values.set("b", 30);
    values.set("sof", 0);
    values.set("rdy", ds ? 0 : 1);
    values.set("y", y);
    values.set("cb", 128);
    values.set("cr", 128);
    wrapper.on_transaction(t, values);
  };
  transaction(100, true, 0);    // pixel accepted
  transaction(180, false, 255); // result 8 cycles later: y out of range!
  wrapper.finish();
  return wrapper.stats().failures > 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --jobs N shards the TLM checker suites across N worker threads
  // (default 1 = serial; results are identical for any N).
  size_t jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (jobs == 0) jobs = 1;  // non-numeric or 0: serial
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
      return 2;
    }
  }

  const models::PropertySuite suite = models::colorconv_suite();
  const size_t kPixels = 2000;

  std::printf("== ColorConv: %zu pixels, %zu properties, %zu evaluation job%s ==\n",
              kPixels, suite.properties.size(), jobs, jobs == 1 ? "" : "s");
  models::RunConfig config;
  config.design = Design::kColorConv;
  config.workload = kPixels;
  config.checkers = suite.properties.size();
  config.jobs = jobs;

  bool all_ok = true;
  for (Level level : {Level::kRtl, Level::kTlmCa, Level::kTlmAt}) {
    config.level = level;
    const models::RunResult r = models::run_simulation(config);
    std::printf("%-7s: %7.3f s  functional=%s properties=%s\n",
                models::to_string(level), r.wall_seconds,
                r.functional_ok ? "ok" : "FAIL",
                r.properties_ok ? "ok" : "FAIL");
    all_ok = all_ok && r.functional_ok && r.properties_ok;
    if (level == Level::kTlmAt) {
      std::printf("\nper-property results at TLM-AT:\n");
      r.report.print(std::cout);
    }
  }

  std::printf("\n== failure injection ==\n");
  const bool caught = buggy_model_is_caught();
  std::printf("buggy TLM model caught by abstracted checker: %s\n",
              caught ? "yes" : "NO (problem!)");
  return (all_ok && caught) ? 0 : 1;
}
