// pslabs: the property-abstraction tool of Fig. 1 as a command-line utility.
//
//   pslabs [--clock <ns>] [--abstract <sig1,sig2,...>] [--paper-push] [file]
//
// Reads an RTL property file (`name: formula @context;` entries) from the
// given path or stdin, applies Methodology III.1, and prints the resulting
// TLM properties with their classification. Demo: run it on the bundled
// DES56 suite with --demo.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "models/properties.h"
#include "psl/parser.h"
#include "rewrite/methodology.h"
#include "support/strutil.h"

using namespace repro;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pslabs [--clock <ns>] [--abstract <sig,sig,...>] "
               "[--paper-push] [--demo | file]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  rewrite::AbstractionOptions options;
  options.clock_period_ns = 10;
  std::string path;
  bool demo = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clock" && i + 1 < argc) {
      options.clock_period_ns = std::strtoull(argv[++i], nullptr, 10);
      if (options.clock_period_ns == 0) return usage();
    } else if (arg == "--abstract" && i + 1 < argc) {
      for (const std::string& sig : split_and_trim(argv[++i], ',')) {
        options.abstracted_signals.insert(sig);
      }
    } else if (arg == "--paper-push") {
      options.push_mode = rewrite::PushMode::kDistributeThroughFixpoints;
    } else if (arg == "--demo") {
      demo = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }

  std::string text;
  if (demo) {
    text = models::kDes56PropertyText;
    options.abstracted_signals.insert("rdy_next_cycle");
    options.abstracted_signals.insert("rdy_next_next_cycle");
  } else if (!path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "pslabs: cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }

  auto parsed = psl::parse_rtl_property_file(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "pslabs: %s\n", parsed.error().to_string().c_str());
    return 1;
  }

  int index = 0;
  for (const psl::RtlProperty& p : parsed.value()) {
    ++index;
    const std::string name = p.name.empty() ? "prop" + std::to_string(index) : p.name;
    rewrite::AbstractionOutcome outcome = rewrite::abstract_property(p, options);
    std::printf("-- %s\n", name.c_str());
    std::printf("   rtl: %s\n", psl::to_string(p).c_str());
    if (outcome.deleted()) {
      std::printf("   tlm: (deleted: property only constrained abstracted signals)\n");
    } else {
      std::printf("   tlm: %s\n", psl::to_string(*outcome.property).c_str());
    }
    std::printf("   class: %s\n", rewrite::to_string(outcome.classification));
    for (const std::string& note : outcome.notes) {
      std::printf("   note: %s\n", note.c_str());
    }
  }
  return 0;
}
