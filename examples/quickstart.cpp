// Quickstart: abstract one RTL property into a TLM property and check it
// dynamically on a tiny hand-rolled transaction stream.
//
//   $ ./quickstart
//
// Walks through the full flow of Fig. 1: parse -> Methodology III.1 ->
// wrapper-based dynamic checking at TLM.
#include <cstdio>

#include "checker/wrapper.h"
#include "psl/parser.h"
#include "rewrite/methodology.h"

using namespace repro;

int main() {
  // 1. An RTL property: "17 cycles after an operation starts on the zero
  //    block, the output is nonzero" (p1 of the paper's Fig. 3).
  const char* text =
      "p1: always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos";
  auto parsed = psl::parse_rtl_property(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error().to_string().c_str());
    return 1;
  }
  const psl::RtlProperty p1 = parsed.value();
  std::printf("RTL property:  %s\n", psl::to_string(p1).c_str());

  // 2. Abstract it for a TLM model of the same IP: clock period 10 ns, no
  //    signals removed.
  rewrite::AbstractionOptions options;
  options.clock_period_ns = 10;
  rewrite::AbstractionOutcome outcome = rewrite::abstract_property(p1, options);
  const psl::TlmProperty q1 = *outcome.property;
  std::printf("TLM property:  %s\n", psl::to_string(q1).c_str());
  std::printf("classification: %s\n", rewrite::to_string(outcome.classification));

  // 3. Check it on a little transaction stream: a write at t=100 starting an
  //    operation on the zero block, and the read returning the result at
  //    t=100+170.
  checker::TlmCheckerWrapper wrapper(q1, /*clock_period_ns=*/10);
  auto transaction = [&](psl::TimeNs t, bool ds, uint64_t indata, uint64_t out) {
    checker::MapContext values;
    values.set("ds", ds ? 1 : 0);
    values.set("indata", indata);
    values.set("out", out);
    wrapper.on_transaction(t, values);
  };
  transaction(100, true, 0, 0);            // write: operation starts
  transaction(110, false, 0, 0);           // write phase ends
  transaction(270, false, 0, 0x9d2a73f1);  // read: result, 170 ns later
  wrapper.finish();

  std::printf("activations: %llu, holds: %llu, failures: %llu\n",
              static_cast<unsigned long long>(wrapper.stats().activations),
              static_cast<unsigned long long>(wrapper.stats().holds),
              static_cast<unsigned long long>(wrapper.stats().failures));
  std::printf("instance pool (lifetime): %zu\n", wrapper.lifetime());
  std::printf("verdict: %s\n", wrapper.ok() ? "PASS" : "FAIL");
  return wrapper.ok() ? 0 : 1;
}
