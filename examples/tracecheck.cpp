// tracecheck: offline dynamic ABV on a recorded trace.
//
//   tracecheck [--tlm] [--clock <ns>] [--abstract <sig,...>] <props.psl> <trace.csv>
//
// Parses an RTL property file and a CSV trace (see checker/trace_io.h for
// the format). By default the trace rows are treated as clock-edge samples
// and the properties are checked as written. With --tlm, the rows are
// treated as transaction-end events: the properties are first abstracted
// with Methodology III.1 (using --clock and --abstract) and checked through
// the Sec. IV wrapper.
//
// Exit code 0 when every property holds, 1 on failures, 2 on usage errors.
// Run with --demo for a self-contained demonstration.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "checker/checker.h"
#include "checker/trace_io.h"
#include "checker/wrapper.h"
#include "psl/parser.h"
#include "rewrite/methodology.h"
#include "support/strutil.h"

using namespace repro;

namespace {

const char kDemoProps[] =
    "p1: always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos;\n"
    "p2: always (!ds || next(!ds until rdy)) @clk_pos;\n";

const char kDemoTrace[] =
    "time,ds,indata,out,rdy\n"
    "10,1,0,0,0\n"
    "20,0,0,0,0\n"
    "180,0,0,0x9d2a73f1,1\n"
    "190,0,0,0x9d2a73f1,0\n";

int usage() {
  std::fprintf(stderr,
               "usage: tracecheck [--tlm] [--clock <ns>] [--abstract <sig,...>] "
               "<props.psl> <trace.csv>\n       tracecheck --demo\n");
  return 2;
}

std::string slurp(const std::string& path, bool& ok) {
  std::ifstream in(path);
  ok = static_cast<bool>(in);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool tlm_mode = false;
  bool demo = false;
  rewrite::AbstractionOptions options;
  options.clock_period_ns = 10;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tlm") {
      tlm_mode = true;
    } else if (arg == "--demo") {
      demo = true;
      tlm_mode = true;
    } else if (arg == "--clock" && i + 1 < argc) {
      options.clock_period_ns = std::strtoull(argv[++i], nullptr, 10);
      if (options.clock_period_ns == 0) return usage();
    } else if (arg == "--abstract" && i + 1 < argc) {
      for (const std::string& sig : split_and_trim(argv[++i], ',')) {
        options.abstracted_signals.insert(sig);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }

  std::string props_text, trace_text;
  if (demo) {
    props_text = kDemoProps;
    trace_text = kDemoTrace;
    std::printf("(demo mode: bundled DES56-style properties and trace)\n");
  } else {
    if (paths.size() != 2) return usage();
    bool ok = false;
    props_text = slurp(paths[0], ok);
    if (!ok) {
      std::fprintf(stderr, "tracecheck: cannot open %s\n", paths[0].c_str());
      return 2;
    }
    trace_text = slurp(paths[1], ok);
    if (!ok) {
      std::fprintf(stderr, "tracecheck: cannot open %s\n", paths[1].c_str());
      return 2;
    }
  }

  auto properties = psl::parse_rtl_property_file(props_text);
  if (!properties.ok()) {
    std::fprintf(stderr, "tracecheck: %s\n", properties.error().to_string().c_str());
    return 2;
  }
  auto trace = checker::parse_trace_csv(trace_text);
  if (!trace.ok()) {
    std::fprintf(stderr, "tracecheck: %s\n", trace.error().to_string().c_str());
    return 2;
  }

  bool all_ok = true;
  if (tlm_mode) {
    std::vector<std::unique_ptr<checker::TlmCheckerWrapper>> wrappers;
    for (const psl::RtlProperty& p : properties.value()) {
      auto outcome = rewrite::abstract_property(p, options);
      if (outcome.deleted()) {
        std::printf("%-8s deleted by signal abstraction\n", p.name.c_str());
        continue;
      }
      std::printf("%-8s %s\n", p.name.c_str(),
                  psl::to_string(*outcome.property).c_str());
      wrappers.push_back(std::make_unique<checker::TlmCheckerWrapper>(
          *outcome.property, options.clock_period_ns));
    }
    for (const checker::Observation& o : trace.value()) {
      for (auto& w : wrappers) w->on_transaction(o.time, o.values);
    }
    for (auto& w : wrappers) {
      w->finish();
      std::printf("%-8s activations=%llu holds=%llu failures=%llu  %s\n",
                  w->name().c_str(),
                  static_cast<unsigned long long>(w->stats().activations),
                  static_cast<unsigned long long>(w->stats().holds),
                  static_cast<unsigned long long>(w->stats().failures),
                  w->ok() ? "PASS" : "FAIL");
      all_ok = all_ok && w->ok();
    }
  } else {
    std::vector<std::unique_ptr<checker::PropertyChecker>> checkers;
    for (const psl::RtlProperty& p : properties.value()) {
      checkers.push_back(std::make_unique<checker::PropertyChecker>(
          p.name, p.formula, p.context.guard));
    }
    for (const checker::Observation& o : trace.value()) {
      for (auto& c : checkers) c->on_event(o.time, o.values);
    }
    for (auto& c : checkers) {
      c->finish();
      std::printf("%-8s activations=%llu holds=%llu failures=%llu  %s\n",
                  c->name().c_str(),
                  static_cast<unsigned long long>(c->stats().activations),
                  static_cast<unsigned long long>(c->stats().holds),
                  static_cast<unsigned long long>(c->stats().failures),
                  c->ok() ? "PASS" : "FAIL");
      all_ok = all_ok && c->ok();
    }
  }
  std::printf("%s\n", all_ok ? "ALL PASS" : "FAILURES DETECTED");
  return all_ok ? 0 : 1;
}
