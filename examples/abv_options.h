// Shared command-line surface of the ABV example binaries (des56_abv,
// colorconv_abv). Both expose the same engine/observability/analysis/ingest
// flags with the same defaults, error messages and exit-2 usage contract;
// this module is the single place they are defined, so a new flag (e.g.
// --record-out/--replay) registers once for every example.
#ifndef REPRO_EXAMPLES_ABV_OPTIONS_H_
#define REPRO_EXAMPLES_ABV_OPTIONS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/prune.h"
#include "models/testbench.h"

namespace repro::examples {

struct AbvOptions {
  size_t jobs = 1;
  size_t batch_size = 64;
  size_t max_inflight = 2;
  size_t witness_depth = 8;
  size_t failure_log_cap = 64;
  std::string trace_out;
  std::string report_out;
  std::string metrics_out;
  size_t metrics_interval = 256;
  bool dump_passes = false;
  bool interpreter = false;
  bool vectorized = true;
  models::AnalysisMode analysis = models::AnalysisMode::kOff;
  analysis::PruneMode prune = analysis::PruneMode::kOff;
  std::string prune_plan_out;
  size_t symbolic_budget = 0;
  // Trace-log ingest (support::tracelog): --record-out serializes the
  // checked record stream; --replay checks a recorded stream instead of
  // simulating.
  std::string record_out;
  std::string replay;
};

// A binary-specific value-less flag (e.g. des56's --no-witness-demo):
// `*value` is set true when the flag appears.
struct ExtraFlag {
  const char* name;
  bool* value;
};

// Prints the shared usage block (plus `extra_usage`, one "          [...]"
// line per binary-specific flag) to stderr.
void print_usage(const char* argv0, const char* extra_usage);

// Parses the shared flags (and `extra`). Malformed values and unknown flags
// print the usage text and exit 2 — the documented CLI contract. Also emits
// the --jobs 1 batching note when --batch-size/--max-inflight were given
// without concurrency.
AbvOptions parse_abv_options(int argc, char** argv,
                             const std::vector<ExtraFlag>& extra = {},
                             const char* extra_usage = "");

// Copies the option groups into a run configuration: engine knobs, witness
// depth / failure-log cap, checker backend, analysis/prune/symbolic modes
// and the ingest paths. Level-dependent observability paths (trace,
// metrics, prune plan) stay with the caller.
void apply(const AbvOptions& options, models::RunConfig& config);

}  // namespace repro::examples

#endif  // REPRO_EXAMPLES_ABV_OPTIONS_H_
