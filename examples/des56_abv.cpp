// des56_abv: the full DES56 flow of the paper on one page.
//
// Abstracts the 9-property RTL suite, prints the generated TLM properties,
// then runs the RTL and TLM-AT simulations with all checkers enabled and
// reports the verification results and the relative simulation cost.
//
// The TLM-AT run additionally carries a deliberately failing "witness demo"
// property (wdemo: rdy must rise one cycle after ds — it actually rises 17
// cycles later), to demonstrate the failure-witness ring buffer: each logged
// violation carries the last transactions observed before the verdict.
//
// Usage: des56_abv [--jobs N] [--batch-size N] [--max-inflight N]
//                  [--witness-depth N] [--failure-log-cap N]
//                  [--trace-out FILE] [--report-out FILE]
//                  [--metrics-out FILE] [--metrics-interval N]
//                  [--dump-passes] [--interpreter] [--no-vectorize]
//                  [--no-witness-demo] [--record-out FILE] [--replay FILE]
//   --jobs N             shard the TLM checker suite across N worker threads
//                        (default 1 = serial; results are identical for any N).
//   --batch-size N       records per sealed arena batch (default 64; ignored
//                        at --jobs 1, which never batches).
//   --max-inflight N     sealed-but-undrained batches before the producer
//                        blocks (default 2 = double-buffered; 1 degenerates
//                        to synchronous dispatch; ignored at --jobs 1).
//   --witness-depth N    failure-witness ring depth per checker (default 8).
//   --failure-log-cap N  max logged failures per checker (default 64).
//   --trace-out FILE     write a Chrome trace-event JSON of the TLM-AT run
//                        (open in Perfetto / chrome://tracing).
//   --report-out FILE    write the TLM-AT verification report as JSON.
//   --metrics-out FILE   stream JSONL metrics/coverage snapshots of the
//                        TLM-AT run (one compact object per line, final line
//                        exact; validate with tools/validate_metrics.py).
//   --metrics-interval N records between two mid-run snapshot lines
//                        (default 256; 0 = only the final line).
//   --dump-passes        print every rewrite-pipeline pass per property.
//   --interpreter        evaluate checkers with the tree-walking interpreter
//                        instead of the compiled flat programs.
//   --no-vectorize       keep the compiled backend scalar: disable the
//                        64-wide lockstep kernel (reports are byte-identical
//                        either way; only speed differs).
//   --no-witness-demo    do not inject the failing demo property.
//   --analyze            run the static property analysis before each
//                        simulation and print its diagnostics.
//   --Werror-analysis    like --analyze, but abort (exit 1) without
//                        simulating when the analysis reports an error.
//   --prune MODE         analysis-guided runtime pruning (off|safe|
//                        aggressive, default off): elide statically-decided
//                        properties and derive subsumed verdicts from their
//                        subsumer's checker. Verdicts are unchanged; with
//                        --Werror-analysis pruned checkers still run and
//                        every derived verdict is cross-checked (PRN003).
//   --prune-plan-out FILE write the machine-readable prune plan JSON.
//   --symbolic-budget N  symbolic bounded trajectory evaluation feeding the
//                        prune planner (analysis/symbolic.h): elide-grade
//                        never-fails proofs beyond the structural prover and
//                        parity-gated dead-node program folds. 0 = off
//                        (default).
//   --record-out FILE    serialize the checked record stream of the TLM-AT
//                        run as a versioned trace log (support::tracelog;
//                        binary, or JSONL for .jsonl paths).
//   --replay FILE        no simulation: replay the trace log recorded at
//                        FILE through the checker configuration of its meta
//                        (design must be DES56; level picks the RTL or
//                        TLM-AT environment). Reports are byte-identical to
//                        the recording run (timing excluded).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "abv_options.h"
#include "analysis/prune.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "psl/parser.h"
#include "rewrite/methodology.h"
#include "support/tracelog.h"

using namespace repro;
using examples::AbvOptions;
using models::Design;
using models::Level;

namespace {

constexpr char kWitnessDemoName[] = "wdemo";
constexpr char kExtraUsage[] = "[--no-witness-demo] ";
constexpr size_t kOps = 300;

// Prints the pre-simulation analysis diagnostics of one run; returns false
// when the analysis blocked the simulation (kError mode with errors).
bool report_analysis(const char* label, const models::RunConfig& config,
                     const models::RunResult& result) {
  if (config.analysis == models::AnalysisMode::kOff) return true;
  if (!result.analysis_diagnostics.empty()) {
    std::printf("-- static analysis (%s) --\n", label);
    for (const analysis::Diagnostic& d : result.analysis_diagnostics) {
      std::printf("%s\n", analysis::to_string(d).c_str());
    }
  }
  if (config.analysis == models::AnalysisMode::kError && !result.analysis_ok) {
    std::printf("analysis errors: %s simulation skipped\n", label);
    return false;
  }
  return true;
}

// Parses and injects the deliberately failing witness-demo property.
bool inject_witness_demo(models::RunConfig& config) {
  auto parsed = psl::parse_rtl_property(
      std::string(kWitnessDemoName) + ": always (!ds || next[1](rdy)) @clk_pos");
  if (!parsed.ok()) {
    std::fprintf(stderr, "internal error: witness demo property: %s\n",
                 parsed.error().to_string().c_str());
    return false;
  }
  config.extra_properties.push_back(std::move(parsed).take());
  return true;
}

// Splits the report into the real properties' verdict and the demo row.
void split_report(const models::RunResult& result, bool& real_ok,
                  const abv::PropertyReport*& demo) {
  real_ok = true;
  demo = nullptr;
  for (const abv::PropertyReport& p : result.report.properties()) {
    if (p.name == kWitnessDemoName) {
      demo = &p;
    } else {
      real_ok = real_ok && p.ok();
    }
  }
}

bool write_report_json(const std::string& path, const models::RunResult& r,
                       size_t jobs) {
  abv::ReportTiming timing;
  timing.wall_seconds = r.wall_seconds;
  timing.jobs = jobs;
  timing.records = r.transactions;
  timing.metrics = r.metrics;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write report to %s\n", path.c_str());
    return false;
  }
  r.report.write_json(out, &timing);
  std::printf("\nJSON report written to %s\n", path.c_str());
  return true;
}

// --replay: no simulation. The log's meta picks the environment (RTL or
// TLM-AT); the checker configuration is built exactly as the live flow
// builds it, so the replayed report matches the recording run's.
int run_replay(const char* argv0, const AbvOptions& opts, bool witness_demo) {
  tlm::RecordStreamMeta meta;
  if (auto err = support::tracelog::read_meta(opts.replay, meta)) {
    std::fprintf(stderr, "%s: cannot replay '%s': %s\n", argv0,
                 opts.replay.c_str(), err->to_string().c_str());
    return 2;
  }
  Design design;
  Level level;
  if (!models::parse_design(meta.design, design) || design != Design::kDes56 ||
      !models::parse_level(meta.level, level)) {
    std::fprintf(stderr,
                 "%s: trace log '%s' records a %s/%s stream, not a DES56 run\n",
                 argv0, opts.replay.c_str(), meta.design.c_str(),
                 meta.level.c_str());
    return 2;
  }

  const models::PropertySuite suite = models::des56_suite();
  models::RunConfig config;
  config.design = Design::kDes56;
  config.level = level;
  config.workload = kOps;
  config.checkers = suite.properties.size();
  examples::apply(opts, config);
  config.observability.prune_plan_path = opts.prune_plan_out;
  const bool demo_injected = witness_demo && level == Level::kTlmAt;
  if (level == Level::kTlmAt) {
    config.observability.trace_path = opts.trace_out;
    config.observability.metrics_path = opts.metrics_out;
    config.observability.metrics_interval = opts.metrics_interval;
    if (demo_injected && !inject_witness_demo(config)) return 1;
  }

  std::printf("== DES56 replay: %s (%s, clock %llu ns) ==\n",
              opts.replay.c_str(), meta.level.c_str(),
              static_cast<unsigned long long>(meta.clock_period_ns));
  const models::RunResult r = models::run_simulation(config);
  if (!r.ingest_error.empty()) {
    std::fprintf(stderr, "%s: %s\n", argv0, r.ingest_error.c_str());
    return 2;
  }
  if (!report_analysis("replay", config, r)) return 1;

  bool real_ok = true;
  const abv::PropertyReport* demo = nullptr;
  split_report(r, real_ok, demo);
  const bool demo_ok =
      !demo_injected || (demo != nullptr && demo->failures > 0);
  std::printf("%-7s: %llu records replayed  properties=%s\n",
              meta.level.c_str(),
              static_cast<unsigned long long>(r.transactions),
              real_ok ? "ok" : "FAIL");
  std::printf("\nper-property results:\n");
  r.report.print(std::cout);
  if (!opts.report_out.empty() &&
      !write_report_json(opts.report_out, r, opts.jobs)) {
    return 1;
  }
  return (real_ok && demo_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool no_witness_demo = false;
  const AbvOptions opts = examples::parse_abv_options(
      argc, argv, {{"--no-witness-demo", &no_witness_demo}}, kExtraUsage);
  const bool witness_demo = !no_witness_demo;

  if (!opts.replay.empty()) return run_replay(argv[0], opts, witness_demo);

  const models::PropertySuite suite = models::des56_suite();

  std::printf("== DES56 property abstraction ==\n");
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  const std::vector<rewrite::AbstractionOutcome> outcomes =
      rewrite::abstract_suite(suite.properties, options);
  for (size_t i = 0; i < suite.properties.size(); ++i) {
    const psl::RtlProperty& p = suite.properties[i];
    const rewrite::AbstractionOutcome& outcome = outcomes[i];
    std::printf("%-4s rtl:  %s\n", p.name.c_str(), psl::to_string(p).c_str());
    if (outcome.deleted()) {
      std::printf("     tlm:  (deleted)\n");
    } else {
      std::printf("     tlm:  %s   [%s]\n", psl::to_string(*outcome.property).c_str(),
                  rewrite::to_string(outcome.classification));
    }
    if (opts.dump_passes) {
      std::fputs(rewrite::format_passes(outcome.passes).c_str(), stdout);
    }
  }

  std::printf("\n== dynamic ABV, %zu operations, %zu evaluation job%s ==\n",
              kOps, opts.jobs, opts.jobs == 1 ? "" : "s");
  models::RunConfig config;
  config.design = Design::kDes56;
  config.workload = kOps;
  config.checkers = suite.properties.size();
  examples::apply(opts, config);
  config.observability.prune_plan_path = opts.prune_plan_out;
  // The trace log covers the TLM-AT run (the paper's target level); the RTL
  // leg runs without ingest outputs.
  config.ingest.record_path = "";

  config.level = Level::kRtl;
  const models::RunResult rtl = models::run_simulation(config);
  if (!report_analysis("RTL", config, rtl)) return 1;
  std::printf("RTL    : %7.3f s  functional=%s properties=%s\n", rtl.wall_seconds,
              rtl.functional_ok ? "ok" : "FAIL", rtl.properties_ok ? "ok" : "FAIL");

  // The demo property is injected only at TLM-AT: rdy rises 17 cycles after
  // ds, so next[1](rdy) fails at every accepted operation and each logged
  // failure carries a witness ring.
  if (witness_demo && !inject_witness_demo(config)) return 1;
  config.level = Level::kTlmAt;
  config.observability.trace_path = opts.trace_out;
  config.observability.metrics_path = opts.metrics_out;
  config.observability.metrics_interval = opts.metrics_interval;
  config.ingest.record_path = opts.record_out;
  const models::RunResult at = models::run_simulation(config);
  if (!at.ingest_error.empty()) {
    std::fprintf(stderr, "%s: %s\n", argv[0], at.ingest_error.c_str());
    return 2;
  }
  if (!report_analysis("TLM-AT", config, at)) return 1;

  // With the demo injected, "properties ok" means: every real property
  // holds, and the demo property fails (it is designed to).
  bool real_ok = true;
  const abv::PropertyReport* demo = nullptr;
  split_report(at, real_ok, demo);
  const bool demo_ok =
      !witness_demo || (demo != nullptr && demo->failures > 0 &&
                        !demo->failure_log.empty() &&
                        !demo->failure_log.front().witness.empty());

  std::printf("TLM-AT : %7.3f s  functional=%s properties=%s  (%llu transactions)\n",
              at.wall_seconds, at.functional_ok ? "ok" : "FAIL",
              real_ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(at.transactions));

  std::printf("\nRTL / TLM-AT speedup with all checkers: %.2fx\n",
              rtl.wall_seconds / at.wall_seconds);
  std::printf("\nper-property results at TLM-AT:\n");
  at.report.print(std::cout);

  if (witness_demo) {
    std::printf("\n== witness demo (%s is designed to fail) ==\n",
                kWitnessDemoName);
    if (!demo_ok) {
      std::printf("demo property did not produce a witnessed failure!\n");
    } else {
      const checker::Failure& first = demo->failure_log.front();
      std::printf("%llu failure%s logged; first at t=%llu ns, witness ring "
                  "(%zu transaction%s, oldest first):\n",
                  static_cast<unsigned long long>(demo->failures),
                  demo->failures == 1 ? "" : "s",
                  static_cast<unsigned long long>(first.time),
                  first.witness.size(), first.witness.size() == 1 ? "" : "s");
      for (const checker::WitnessEntry& entry : first.witness) {
        std::printf("  t=%6llu ns:", static_cast<unsigned long long>(entry.time));
        if (entry.observables != nullptr) {
          for (const auto& [name, value] : *entry.observables) {
            std::printf(" %s=%llu", name.c_str(),
                        static_cast<unsigned long long>(value));
          }
        }
        std::printf("\n");
      }
    }
  }

  if (!opts.report_out.empty() &&
      !write_report_json(opts.report_out, at, opts.jobs)) {
    return 1;
  }
  if (!opts.trace_out.empty()) {
    std::printf("Chrome trace written to %s\n", opts.trace_out.c_str());
  }
  if (!opts.metrics_out.empty()) {
    std::printf("JSONL metrics snapshots written to %s\n",
                opts.metrics_out.c_str());
  }
  if (!opts.record_out.empty()) {
    std::printf("trace log written to %s\n", opts.record_out.c_str());
  }
  if (opts.prune != analysis::PruneMode::kOff) {
    std::printf("prune plan (%s): %zu live, %zu elided, %zu subsumed\n",
                analysis::to_string(at.prune_plan.mode), at.prune_plan.live(),
                at.prune_plan.elided(), at.prune_plan.subsumed());
    if (!opts.prune_plan_out.empty()) {
      std::printf("prune plan JSON written to %s\n",
                  opts.prune_plan_out.c_str());
    }
  }

  return (rtl.functional_ok && rtl.properties_ok && at.functional_ok &&
          real_ok && demo_ok)
             ? 0
             : 1;
}
