// des56_abv: the full DES56 flow of the paper on one page.
//
// Abstracts the 9-property RTL suite, prints the generated TLM properties,
// then runs the RTL and TLM-AT simulations with all checkers enabled and
// reports the verification results and the relative simulation cost.
//
// The TLM-AT run additionally carries a deliberately failing "witness demo"
// property (wdemo: rdy must rise one cycle after ds — it actually rises 17
// cycles later), to demonstrate the failure-witness ring buffer: each logged
// violation carries the last transactions observed before the verdict.
//
// Usage: des56_abv [--jobs N] [--batch-size N] [--max-inflight N]
//                  [--witness-depth N] [--failure-log-cap N]
//                  [--trace-out FILE] [--report-out FILE]
//                  [--metrics-out FILE] [--metrics-interval N]
//                  [--dump-passes] [--interpreter] [--no-vectorize]
//                  [--no-witness-demo]
//   --jobs N             shard the TLM checker suite across N worker threads
//                        (default 1 = serial; results are identical for any N).
//   --batch-size N       records per sealed arena batch (default 64; ignored
//                        at --jobs 1, which never batches).
//   --max-inflight N     sealed-but-undrained batches before the producer
//                        blocks (default 2 = double-buffered; 1 degenerates
//                        to synchronous dispatch; ignored at --jobs 1).
//   --witness-depth N    failure-witness ring depth per checker (default 8).
//   --failure-log-cap N  max logged failures per checker (default 64).
//   --trace-out FILE     write a Chrome trace-event JSON of the TLM-AT run
//                        (open in Perfetto / chrome://tracing).
//   --report-out FILE    write the TLM-AT verification report as JSON.
//   --metrics-out FILE   stream JSONL metrics/coverage snapshots of the
//                        TLM-AT run (one compact object per line, final line
//                        exact; validate with tools/validate_metrics.py).
//   --metrics-interval N records between two mid-run snapshot lines
//                        (default 256; 0 = only the final line).
//   --dump-passes        print every rewrite-pipeline pass per property.
//   --interpreter        evaluate checkers with the tree-walking interpreter
//                        instead of the compiled flat programs.
//   --no-vectorize       keep the compiled backend scalar: disable the
//                        64-wide lockstep kernel (reports are byte-identical
//                        either way; only speed differs).
//   --no-witness-demo    do not inject the failing demo property.
//   --analyze            run the static property analysis before each
//                        simulation and print its diagnostics.
//   --Werror-analysis    like --analyze, but abort (exit 1) without
//                        simulating when the analysis reports an error.
//   --prune MODE         analysis-guided runtime pruning (off|safe|
//                        aggressive, default off): elide statically-decided
//                        properties and derive subsumed verdicts from their
//                        subsumer's checker. Verdicts are unchanged; with
//                        --Werror-analysis pruned checkers still run and
//                        every derived verdict is cross-checked (PRN003).
//   --prune-plan-out FILE write the machine-readable prune plan JSON.
//   --symbolic-budget N  symbolic bounded trajectory evaluation feeding the
//                        prune planner (analysis/symbolic.h): elide-grade
//                        never-fails proofs beyond the structural prover and
//                        parity-gated dead-node program folds. 0 = off
//                        (default).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/prune.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "psl/parser.h"
#include "rewrite/methodology.h"
#include "support/strutil.h"

using namespace repro;
using models::Design;
using models::Level;

namespace {

constexpr char kWitnessDemoName[] = "wdemo";

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--batch-size N] [--max-inflight N]\n"
               "          [--witness-depth N] [--failure-log-cap N]\n"
               "          [--trace-out FILE] [--report-out FILE]\n"
               "          [--metrics-out FILE] [--metrics-interval N]\n"
               "          [--dump-passes] [--interpreter] [--no-vectorize]\n"
               "          [--no-witness-demo] [--analyze] [--Werror-analysis]\n"
               "          [--prune off|safe|aggressive] [--prune-plan-out FILE]\n"
               "          [--symbolic-budget N]\n",
               argv0);
}

// Prints the pre-simulation analysis diagnostics of one run; returns false
// when the analysis blocked the simulation (kError mode with errors).
bool report_analysis(const char* label, const models::RunConfig& config,
                     const models::RunResult& result) {
  if (config.analysis == models::AnalysisMode::kOff) return true;
  if (!result.analysis_diagnostics.empty()) {
    std::printf("-- static analysis (%s) --\n", label);
    for (const analysis::Diagnostic& d : result.analysis_diagnostics) {
      std::printf("%s\n", analysis::to_string(d).c_str());
    }
  }
  if (config.analysis == models::AnalysisMode::kError && !result.analysis_ok) {
    std::printf("analysis errors: %s simulation skipped\n", label);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t jobs = 1;
  size_t batch_size = 64;
  size_t max_inflight = 2;
  size_t witness_depth = 8;
  size_t failure_log_cap = 64;
  bool batching_flags_used = false;
  std::string trace_out;
  std::string report_out;
  std::string metrics_out;
  size_t metrics_interval = 256;
  bool witness_demo = true;
  bool dump_passes = false;
  bool interpreter = false;
  bool vectorized = true;
  models::AnalysisMode analysis = models::AnalysisMode::kOff;
  analysis::PruneMode prune = analysis::PruneMode::kOff;
  std::string prune_plan_out;
  size_t symbolic_budget = 0;
  for (int i = 1; i < argc; ++i) {
    // Strict numeric arguments: garbage ("abc", "64k", "-1") is a usage
    // error, not a silent 0.
    auto size_arg = [&](size_t& out) {
      const std::optional<size_t> parsed = repro::parse_size(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "%s: bad numeric value '%s' for %s\n", argv[0],
                     argv[i], argv[i - 1]);
        usage(argv[0]);
        std::exit(2);
      }
      out = *parsed;
    };
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      size_arg(jobs);
      if (jobs == 0) jobs = 1;  // 0: serial
    } else if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
      size_arg(batch_size);
      if (batch_size == 0) batch_size = 1;
      batching_flags_used = true;
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      size_arg(max_inflight);
      if (max_inflight == 0) max_inflight = 1;
      batching_flags_used = true;
    } else if (std::strcmp(argv[i], "--witness-depth") == 0 && i + 1 < argc) {
      size_arg(witness_depth);
    } else if (std::strcmp(argv[i], "--failure-log-cap") == 0 && i + 1 < argc) {
      size_arg(failure_log_cap);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--report-out") == 0 && i + 1 < argc) {
      report_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0 && i + 1 < argc) {
      size_arg(metrics_interval);
    } else if (std::strcmp(argv[i], "--dump-passes") == 0) {
      dump_passes = true;
    } else if (std::strcmp(argv[i], "--interpreter") == 0) {
      interpreter = true;
    } else if (std::strcmp(argv[i], "--no-vectorize") == 0) {
      vectorized = false;
    } else if (std::strcmp(argv[i], "--no-witness-demo") == 0) {
      witness_demo = false;
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      if (analysis == models::AnalysisMode::kOff) {
        analysis = models::AnalysisMode::kOn;
      }
    } else if (std::strcmp(argv[i], "--Werror-analysis") == 0) {
      analysis = models::AnalysisMode::kError;
    } else if (std::strcmp(argv[i], "--prune") == 0 && i + 1 < argc) {
      if (!analysis::parse_prune_mode(argv[++i], prune)) {
        std::fprintf(stderr,
                     "bad --prune value '%s' (want off, safe or aggressive)\n",
                     argv[i]);
        usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--prune-plan-out") == 0 && i + 1 < argc) {
      prune_plan_out = argv[++i];
    } else if (std::strcmp(argv[i], "--symbolic-budget") == 0 && i + 1 < argc) {
      const std::optional<uint64_t> parsed = repro::parse_u64(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(
            stderr,
            "bad --symbolic-budget value '%s' (want a non-negative integer)\n",
            argv[i]);
        usage(argv[0]);
        return 2;
      }
      symbolic_budget = static_cast<size_t>(*parsed);
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (batching_flags_used && jobs == 1) {
    // SIZ-style sizing note, mirroring the analysis layer's tone: the
    // serial path evaluates records synchronously and never batches.
    std::fprintf(stderr,
                 "note: --batch-size/--max-inflight have no effect at "
                 "--jobs 1 (serial engine path never batches)\n");
  }

  const models::PropertySuite suite = models::des56_suite();

  std::printf("== DES56 property abstraction ==\n");
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  const std::vector<rewrite::AbstractionOutcome> outcomes =
      rewrite::abstract_suite(suite.properties, options);
  for (size_t i = 0; i < suite.properties.size(); ++i) {
    const psl::RtlProperty& p = suite.properties[i];
    const rewrite::AbstractionOutcome& outcome = outcomes[i];
    std::printf("%-4s rtl:  %s\n", p.name.c_str(), psl::to_string(p).c_str());
    if (outcome.deleted()) {
      std::printf("     tlm:  (deleted)\n");
    } else {
      std::printf("     tlm:  %s   [%s]\n", psl::to_string(*outcome.property).c_str(),
                  rewrite::to_string(outcome.classification));
    }
    if (dump_passes) {
      std::fputs(rewrite::format_passes(outcome.passes).c_str(), stdout);
    }
  }

  const size_t kOps = 300;
  std::printf("\n== dynamic ABV, %zu operations, %zu evaluation job%s ==\n",
              kOps, jobs, jobs == 1 ? "" : "s");
  models::RunConfig config;
  config.design = Design::kDes56;
  config.workload = kOps;
  config.checkers = suite.properties.size();
  config.engine = {.jobs = jobs,
                   .batch_size = batch_size,
                   .max_inflight_batches = max_inflight,
                   .vectorized = vectorized};
  config.observability.witness_depth = witness_depth;
  config.observability.failure_log_cap = failure_log_cap;
  config.compiled_checkers = !interpreter;
  config.analysis = analysis;
  config.analysis.prune = prune;
  config.analysis.symbolic_budget = symbolic_budget;
  config.observability.prune_plan_path = prune_plan_out;

  config.level = Level::kRtl;
  const models::RunResult rtl = models::run_simulation(config);
  if (!report_analysis("RTL", config, rtl)) return 1;
  std::printf("RTL    : %7.3f s  functional=%s properties=%s\n", rtl.wall_seconds,
              rtl.functional_ok ? "ok" : "FAIL", rtl.properties_ok ? "ok" : "FAIL");

  // The demo property is injected only at TLM-AT: rdy rises 17 cycles after
  // ds, so next[1](rdy) fails at every accepted operation and each logged
  // failure carries a witness ring.
  if (witness_demo) {
    auto parsed = psl::parse_rtl_property(
        std::string(kWitnessDemoName) + ": always (!ds || next[1](rdy)) @clk_pos");
    if (!parsed.ok()) {
      std::fprintf(stderr, "internal error: witness demo property: %s\n",
                   parsed.error().to_string().c_str());
      return 1;
    }
    config.extra_properties.push_back(std::move(parsed).take());
  }
  config.level = Level::kTlmAt;
  config.observability.trace_path = trace_out;
  config.observability.metrics_path = metrics_out;
  config.observability.metrics_interval = metrics_interval;
  const models::RunResult at = models::run_simulation(config);
  if (!report_analysis("TLM-AT", config, at)) return 1;

  // With the demo injected, "properties ok" means: every real property
  // holds, and the demo property fails (it is designed to).
  bool real_ok = true;
  const abv::PropertyReport* demo = nullptr;
  for (const abv::PropertyReport& p : at.report.properties()) {
    if (p.name == kWitnessDemoName) {
      demo = &p;
    } else {
      real_ok = real_ok && p.ok();
    }
  }
  const bool demo_ok =
      !witness_demo || (demo != nullptr && demo->failures > 0 &&
                        !demo->failure_log.empty() &&
                        !demo->failure_log.front().witness.empty());

  std::printf("TLM-AT : %7.3f s  functional=%s properties=%s  (%llu transactions)\n",
              at.wall_seconds, at.functional_ok ? "ok" : "FAIL",
              real_ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(at.transactions));

  std::printf("\nRTL / TLM-AT speedup with all checkers: %.2fx\n",
              rtl.wall_seconds / at.wall_seconds);
  std::printf("\nper-property results at TLM-AT:\n");
  at.report.print(std::cout);

  if (witness_demo) {
    std::printf("\n== witness demo (%s is designed to fail) ==\n",
                kWitnessDemoName);
    if (!demo_ok) {
      std::printf("demo property did not produce a witnessed failure!\n");
    } else {
      const checker::Failure& first = demo->failure_log.front();
      std::printf("%llu failure%s logged; first at t=%llu ns, witness ring "
                  "(%zu transaction%s, oldest first):\n",
                  static_cast<unsigned long long>(demo->failures),
                  demo->failures == 1 ? "" : "s",
                  static_cast<unsigned long long>(first.time),
                  first.witness.size(), first.witness.size() == 1 ? "" : "s");
      for (const checker::WitnessEntry& entry : first.witness) {
        std::printf("  t=%6llu ns:", static_cast<unsigned long long>(entry.time));
        if (entry.observables != nullptr) {
          for (const auto& [name, value] : *entry.observables) {
            std::printf(" %s=%llu", name.c_str(),
                        static_cast<unsigned long long>(value));
          }
        }
        std::printf("\n");
      }
    }
  }

  if (!report_out.empty()) {
    abv::ReportTiming timing;
    timing.wall_seconds = at.wall_seconds;
    timing.jobs = jobs;
    timing.records = at.transactions;
    timing.metrics = at.metrics;
    std::ofstream out(report_out);
    if (!out) {
      std::fprintf(stderr, "cannot write report to %s\n", report_out.c_str());
      return 1;
    }
    at.report.write_json(out, &timing);
    std::printf("\nJSON report written to %s\n", report_out.c_str());
  }
  if (!trace_out.empty()) {
    std::printf("Chrome trace written to %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::printf("JSONL metrics snapshots written to %s\n", metrics_out.c_str());
  }
  if (prune != analysis::PruneMode::kOff) {
    std::printf("prune plan (%s): %zu live, %zu elided, %zu subsumed\n",
                analysis::to_string(at.prune_plan.mode), at.prune_plan.live(),
                at.prune_plan.elided(), at.prune_plan.subsumed());
    if (!prune_plan_out.empty()) {
      std::printf("prune plan JSON written to %s\n", prune_plan_out.c_str());
    }
  }

  return (rtl.functional_ok && rtl.properties_ok && at.functional_ok &&
          real_ok && demo_ok)
             ? 0
             : 1;
}
