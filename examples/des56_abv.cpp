// des56_abv: the full DES56 flow of the paper on one page.
//
// Abstracts the 9-property RTL suite, prints the generated TLM properties,
// then runs the RTL and TLM-AT simulations with all checkers enabled and
// reports the verification results and the relative simulation cost.
//
// Usage: des56_abv [--jobs N]
//   --jobs N  shard the TLM checker suite across N worker threads
//             (default 1 = serial; results are identical for any N).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "models/properties.h"
#include "models/testbench.h"
#include "rewrite/methodology.h"

using namespace repro;
using models::Design;
using models::Level;

int main(int argc, char** argv) {
  size_t jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (jobs == 0) jobs = 1;  // non-numeric or 0: serial
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
      return 2;
    }
  }

  const models::PropertySuite suite = models::des56_suite();

  std::printf("== DES56 property abstraction ==\n");
  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  for (const psl::RtlProperty& p : suite.properties) {
    rewrite::AbstractionOutcome outcome = rewrite::abstract_property(p, options);
    std::printf("%-4s rtl:  %s\n", p.name.c_str(), psl::to_string(p).c_str());
    if (outcome.deleted()) {
      std::printf("     tlm:  (deleted)\n");
    } else {
      std::printf("     tlm:  %s   [%s]\n", psl::to_string(*outcome.property).c_str(),
                  rewrite::to_string(outcome.classification));
    }
  }

  const size_t kOps = 300;
  std::printf("\n== dynamic ABV, %zu operations, %zu evaluation job%s ==\n",
              kOps, jobs, jobs == 1 ? "" : "s");
  models::RunConfig config;
  config.design = Design::kDes56;
  config.workload = kOps;
  config.checkers = suite.properties.size();
  config.jobs = jobs;

  config.level = Level::kRtl;
  const models::RunResult rtl = models::run_simulation(config);
  std::printf("RTL    : %7.3f s  functional=%s properties=%s\n", rtl.wall_seconds,
              rtl.functional_ok ? "ok" : "FAIL", rtl.properties_ok ? "ok" : "FAIL");

  config.level = Level::kTlmAt;
  const models::RunResult at = models::run_simulation(config);
  std::printf("TLM-AT : %7.3f s  functional=%s properties=%s  (%llu transactions)\n",
              at.wall_seconds, at.functional_ok ? "ok" : "FAIL",
              at.properties_ok ? "ok" : "FAIL",
              static_cast<unsigned long long>(at.transactions));

  std::printf("\nRTL / TLM-AT speedup with all checkers: %.2fx\n",
              rtl.wall_seconds / at.wall_seconds);
  std::printf("\nper-property results at TLM-AT:\n");
  at.report.print(std::cout);
  return (rtl.functional_ok && rtl.properties_ok && at.functional_ok &&
          at.properties_ok)
             ? 0
             : 1;
}
