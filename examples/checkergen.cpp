// checkergen: synthesize standalone C++ monitors from PSL properties (the
// FoCs role in the paper's Fig. 1 flow).
//
//   checkergen [--tlm] [--clock <ns>] [--abstract <sig,...>] [file]
//
// Reads an RTL property file (stdin by default) and prints, for each
// property, a self-contained C++ checker class. With --tlm the properties
// are first abstracted with Methodology III.1 so the emitted monitors hook
// transaction-end events; without it they are RTL monitors for clock-edge
// sampling. Run with --demo to emit the checker for the paper's q3.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "checker/codegen.h"
#include "psl/parser.h"
#include "rewrite/methodology.h"
#include "support/strutil.h"

using namespace repro;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: checkergen [--tlm] [--clock <ns>] [--abstract "
               "<sig,...>] [--demo | file]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool tlm_mode = false;
  bool demo = false;
  rewrite::AbstractionOptions options;
  options.clock_period_ns = 10;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tlm") {
      tlm_mode = true;
    } else if (arg == "--demo") {
      demo = true;
      tlm_mode = true;
    } else if (arg == "--clock" && i + 1 < argc) {
      options.clock_period_ns = std::strtoull(argv[++i], nullptr, 10);
      if (options.clock_period_ns == 0) return usage();
    } else if (arg == "--abstract" && i + 1 < argc) {
      for (const std::string& sig : split_and_trim(argv[++i], ',')) {
        options.abstracted_signals.insert(sig);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      path = arg;
    }
  }

  std::string text;
  if (demo) {
    text =
        "q3: always (!ds || (next[15](rdy_next_next_cycle) && "
        "next[16](rdy_next_cycle) && next[17](rdy))) @clk_pos;";
    options.abstracted_signals = {"rdy_next_cycle", "rdy_next_next_cycle"};
  } else if (!path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "checkergen: cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }

  auto properties = psl::parse_rtl_property_file(text);
  if (!properties.ok()) {
    std::fprintf(stderr, "checkergen: %s\n",
                 properties.error().to_string().c_str());
    return 1;
  }

  for (const psl::RtlProperty& p : properties.value()) {
    if (tlm_mode) {
      rewrite::AbstractionOutcome outcome = rewrite::abstract_property(p, options);
      if (outcome.deleted()) {
        std::printf("// %s: deleted by signal abstraction, no checker emitted\n\n",
                    p.name.c_str());
        continue;
      }
      std::fputs(checker::generate_checker(*outcome.property).c_str(), stdout);
    } else {
      std::fputs(checker::generate_checker(p).c_str(), stdout);
    }
    std::printf("\n");
  }
  return 0;
}
