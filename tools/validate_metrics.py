#!/usr/bin/env python3
"""Validate a JSONL metrics/coverage snapshot stream emitted by --metrics-out.

The stream is one compact JSON object per line. Each line carries:

  schema_version  1 (per-line; independent of the report schema)
  seq             snapshot index, monotone from 0 with no gaps
  final           true exactly on the last line (the exact end-of-run
                  snapshot taken after every shard joined); false before
  records         transaction records ingested so far, non-decreasing
  sim_time_ns     sim time of the last ingested record, non-decreasing
  metrics         merged MetricsSnapshot (counters/gauges/histograms maps)
  coverage        per-property coverage rows; on the final line each row
                  must satisfy holds == real_passes + vacuous_passes and
                  dynamically_vacuous == (failures == 0 and real_passes == 0)

Mid-run lines in sharded mode are approximate (shards may lag the producer),
so the counter invariants are only enforced on the final line; structural
checks apply to every line.

Exit status: 0 on success, 1 on any violation (each is printed).

Usage: validate_metrics.py METRICS_JSONL [--min-lines N]
                           [--expect-properties N]
"""

import argparse
import json
import sys

COVERAGE_KEYS = ("name", "activations", "holds", "failures", "trivial",
                 "real_passes", "vacuous_passes", "missed_deadlines",
                 "node_visits", "dynamically_vacuous")

HISTOGRAM_KEYS = ("bounds", "counts", "total", "sum", "max")


def fail(errors, message):
    errors.append(message)
    print("FAIL: %s" % message, file=sys.stderr)


def check_metrics(obj, errors, where):
    if not isinstance(obj, dict):
        fail(errors, "%s: metrics is not an object" % where)
        return
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(obj.get(key), dict):
            fail(errors, "%s: metrics.%s missing or not an object" % (where, key))
    for name, h in obj.get("histograms", {}).items():
        for key in HISTOGRAM_KEYS:
            if key not in h:
                fail(errors, "%s: histogram %r missing %r" % (where, name, key))
        counts = h.get("counts", [])
        if isinstance(counts, list) and h.get("total") != sum(counts):
            fail(errors, "%s: histogram %r total %r != sum of counts %r"
                 % (where, name, h.get("total"), sum(counts)))


def check_coverage(rows, errors, where, exact):
    if not isinstance(rows, list):
        fail(errors, "%s: coverage is not an array" % where)
        return
    seen = set()
    for row in rows:
        name = row.get("name")
        for key in COVERAGE_KEYS:
            if key not in row:
                fail(errors, "%s: coverage row %r missing %r" % (where, name, key))
        if name in seen:
            fail(errors, "%s: duplicate coverage row %r" % (where, name))
        seen.add(name)
        if not exact:
            continue  # mid-run rows are approximate; only shape is checked
        if row.get("holds") != row.get("real_passes", 0) + row.get("vacuous_passes", 0):
            fail(errors, "%s: row %r: holds %r != real %r + vacuous %r"
                 % (where, name, row.get("holds"), row.get("real_passes"),
                    row.get("vacuous_passes")))
        vacuous = row.get("failures", 0) == 0 and row.get("real_passes", 0) == 0
        if row.get("dynamically_vacuous") != vacuous:
            fail(errors, "%s: row %r: dynamically_vacuous %r, expected %r"
                 % (where, name, row.get("dynamically_vacuous"), vacuous))


def check_stream(lines, errors, min_lines, expect_properties):
    if len(lines) < min_lines:
        fail(errors, "stream has %d lines, want >= %d" % (len(lines), min_lines))
    prev_records = -1
    prev_time = -1
    for i, obj in enumerate(lines):
        where = "line %d" % (i + 1)
        if not isinstance(obj, dict):
            fail(errors, "%s: not an object" % where)
            continue
        if obj.get("schema_version") != 1:
            fail(errors, "%s: schema_version %r, want 1"
                 % (where, obj.get("schema_version")))
        if obj.get("seq") != i:
            fail(errors, "%s: seq %r, want %d" % (where, obj.get("seq"), i))
        last = i == len(lines) - 1
        if obj.get("final") is not (True if last else False):
            fail(errors, "%s: final %r on %s line"
                 % (where, obj.get("final"), "last" if last else "mid-run"))
        records = obj.get("records")
        if not isinstance(records, int) or records < prev_records:
            fail(errors, "%s: records %r not non-decreasing (prev %d)"
                 % (where, records, prev_records))
        else:
            prev_records = records
        sim_time = obj.get("sim_time_ns")
        if not isinstance(sim_time, int) or sim_time < prev_time:
            fail(errors, "%s: sim_time_ns %r not non-decreasing (prev %d)"
                 % (where, sim_time, prev_time))
        else:
            prev_time = sim_time
        check_metrics(obj.get("metrics"), errors, where)
        check_coverage(obj.get("coverage"), errors, where, exact=last)
        if last and expect_properties is not None:
            n = len(obj.get("coverage", []))
            if n != expect_properties:
                fail(errors, "%s: final line has %d coverage rows, want %d"
                     % (where, n, expect_properties))
    if lines and not errors:
        final = lines[-1]
        vacuous = sum(1 for r in final.get("coverage", [])
                      if r.get("dynamically_vacuous"))
        print("metrics ok: %d lines, %d records, %d properties "
              "(%d dynamically vacuous)"
              % (len(lines), final.get("records", 0),
                 len(final.get("coverage", [])), vacuous))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics", help="JSONL stream from --metrics-out")
    parser.add_argument("--min-lines", type=int, default=1,
                        help="minimum snapshot lines expected")
    parser.add_argument("--expect-properties", type=int, default=None,
                        help="exact coverage row count on the final line")
    args = parser.parse_args()

    errors = []
    lines = []
    try:
        with open(args.metrics) as f:
            for i, raw in enumerate(f):
                raw = raw.strip()
                if not raw:
                    fail(errors, "line %d: empty line" % (i + 1))
                    continue
                try:
                    lines.append(json.loads(raw))
                except ValueError as e:
                    fail(errors, "line %d: not valid JSON: %s" % (i + 1, e))
    except OSError as e:
        fail(errors, "cannot read %s: %s" % (args.metrics, e))
        return 1
    if not lines:
        fail(errors, "stream is empty")
    else:
        check_stream(lines, errors, args.min_lines, args.expect_properties)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
