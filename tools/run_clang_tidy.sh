#!/usr/bin/env sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library
# sources using the compile database of an existing build directory.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR] [PATH_FILTER...]
#   BUILD_DIR    build tree with compile_commands.json (default: build)
#   PATH_FILTER  only lint files whose path contains one of these substrings
#                (default: src/analysis src/rewrite src/checker src/support)
#
# Exits 0 with a notice when clang-tidy is not installed, so CI images
# without the tool skip the lint instead of failing.
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift
filters=${*:-"src/analysis src/rewrite src/checker src/support"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found in PATH; skipping lint" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $build_dir/compile_commands.json missing;" >&2
  echo "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first" >&2
  exit 1
fi

status=0
for filter in $filters; do
  for f in "$repo_root"/$filter/*.cc; do
    [ -e "$f" ] || continue
    echo "== clang-tidy $f"
    clang-tidy -p "$build_dir" "$f" || status=1
  done
done
exit $status
