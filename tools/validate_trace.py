#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by --trace-out.

Checks that the file parses, that every event carries the keys its phase
requires, that spans within one lane (tid) never overlap (vector_batch
prime spans are exempt: they nest inside the evaluation span on the same
lane, and instead must carry args.lanes >= 2 and be sequential among
themselves), that pipelined dispatch is causal (a shard_batch span for
batch seq k never starts before the producer's batch_fill span for seq k
ended), and (optionally) that a --report-out JSON produced by the same run
parses and matches the expected schema.

With --strict, any complete span whose name is not one the engine emits
(batch_fill, shard_batch, retire, vector_batch) is a violation — use it in
fixtures to catch schema drift the moment a new span name appears.

Exit status: 0 on success, 1 on any violation (each is printed).

Usage: validate_trace.py TRACE [--report REPORT] [--min-spans-per-lane N]
                         [--strict]
"""

import argparse
import json
import sys

EPS = 1e-6  # µs tolerance: timestamps carry a ns fraction

# Complete-span (ph=X) names the evaluation engine emits; --strict rejects
# anything else.
KNOWN_SPANS = {"batch_fill", "shard_batch", "retire", "vector_batch"}


def fail(errors, message):
    errors.append(message)
    print("FAIL: %s" % message, file=sys.stderr)


def check_events(doc, errors, min_spans, strict=False):
    if not isinstance(doc, dict):
        fail(errors, "top level is not an object")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, "traceEvents missing or empty")
        return

    spans_by_tid = {}
    names_by_tid = {}
    fill_end_by_seq = {}  # producer-lane batch_fill spans, keyed by args.seq
    shard_spans = []      # (seq, ts, tid) of every shard_batch span
    vector_spans = {}     # tid -> [(ts, dur)] of vector_batch prime spans
    instants = 0
    for i, event in enumerate(events):
        where = "event %d" % i
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            fail(errors, "%s: unknown phase %r" % (where, phase))
            continue
        for key in ("tid", "pid", "name"):
            if key not in event:
                fail(errors, "%s (ph=%s): missing %r" % (where, phase, key))
        tid = event.get("tid")
        if phase == "X":
            if "ts" not in event or "dur" not in event:
                fail(errors, "%s: complete span without ts/dur" % where)
                continue
            ts, dur = float(event["ts"]), float(event["dur"])
            name = event.get("name")
            if strict and name not in KNOWN_SPANS:
                fail(errors, "%s: unknown span name %r (strict mode; known: %s)"
                     % (where, name, ", ".join(sorted(KNOWN_SPANS))))
            if name == "vector_batch":
                # Lockstep prime of a multi-lane deadline cohort. These nest
                # *inside* the evaluation span on the same lane (shard_batch
                # under the engine), so they are exempt from the sequential
                # same-lane check and validated separately below.
                lanes = event.get("args", {}).get("lanes")
                if not isinstance(lanes, int) or lanes < 2:
                    fail(errors, "%s: vector_batch with args.lanes %r, want "
                         "an int >= 2" % (where, lanes))
                vector_spans.setdefault(tid, []).append((ts, dur))
                continue
            spans_by_tid.setdefault(tid, []).append((ts, dur, name))
            seq = event.get("args", {}).get("seq")
            if name == "batch_fill":
                if tid != 0:
                    fail(errors, "%s: batch_fill on lane %s, want 0" % (where, tid))
                if seq is None:
                    fail(errors, "%s: batch_fill without args.seq" % where)
                else:
                    fill_end_by_seq[seq] = ts + dur
            elif name == "shard_batch":
                if tid == 0:
                    fail(errors, "%s: shard_batch on the producer lane" % where)
                if seq is None:
                    fail(errors, "%s: shard_batch without args.seq" % where)
                else:
                    shard_spans.append((seq, ts, tid))
        elif phase == "i":
            instants += 1
            if event.get("s") != "t":
                fail(errors, "%s: instant scope %r, want 't'" % (where, event.get("s")))
            if "ts" not in event:
                fail(errors, "%s: instant without ts" % where)
        elif phase == "M":
            if event.get("name") != "thread_name":
                fail(errors, "%s: metadata name %r" % (where, event.get("name")))
            name = event.get("args", {}).get("name")
            if not name:
                fail(errors, "%s: thread_name without args.name" % where)
            names_by_tid[tid] = name

    if not spans_by_tid:
        fail(errors, "no complete spans in trace")
        return

    # Every lane that carries spans must be named, and carry enough of them.
    for tid, spans in sorted(spans_by_tid.items()):
        if tid not in names_by_tid:
            fail(errors, "lane tid=%s has spans but no thread_name" % tid)
        if len(spans) < min_spans:
            fail(errors, "lane tid=%s has %d spans, want >= %d"
                 % (tid, len(spans), min_spans))

    # Spans within one lane are strictly sequential (batches never overlap).
    for tid, spans in sorted(spans_by_tid.items()):
        spans.sort()
        for (a_ts, a_dur, a_name), (b_ts, _, b_name) in zip(spans, spans[1:]):
            if b_ts < a_ts + a_dur - EPS:
                fail(errors, "lane tid=%s: span %r at %f overlaps %r ending %f"
                     % (tid, b_name, b_ts, a_name, a_ts + a_dur))

    # vector_batch spans share their lane with the enclosing evaluation span
    # but must still be sequential among themselves (one cohort per prime).
    for tid, spans in sorted(vector_spans.items()):
        spans.sort()
        for (a_ts, a_dur), (b_ts, _) in zip(spans, spans[1:]):
            if b_ts < a_ts + a_dur - EPS:
                fail(errors, "lane tid=%s: vector_batch at %f overlaps one "
                     "ending %f" % (tid, b_ts, a_ts + a_dur))

    # Pipelined-dispatch causality: shard work on batch seq k cannot start
    # before the producer sealed it (= the end of its batch_fill span).
    # Under pipelining the shard spans of batch k legitimately overlap the
    # *fill* of batch k+1, so span nesting is not required — only this
    # per-seq ordering.
    for seq, ts, tid in shard_spans:
        if seq not in fill_end_by_seq:
            fail(errors, "lane tid=%s: shard_batch seq=%s has no batch_fill"
                 % (tid, seq))
        elif ts < fill_end_by_seq[seq] - EPS:
            fail(errors, "lane tid=%s: shard_batch seq=%s starts at %f before "
                 "its fill ended at %f"
                 % (tid, seq, ts, fill_end_by_seq[seq]))
    if shard_spans and not fill_end_by_seq:
        fail(errors, "shard_batch spans present but no batch_fill spans")

    lanes = ", ".join("%s=%s(%d spans)" % (t, names_by_tid.get(t, "?"),
                                           len(spans_by_tid.get(t, [])))
                      for t in sorted(spans_by_tid))
    vector_total = sum(len(v) for v in vector_spans.values())
    print("trace ok: %d events, %d instants, %d vector_batch spans, lanes: %s"
          % (len(events), instants, vector_total, lanes))


def check_report(doc, errors):
    if not isinstance(doc, dict):
        fail(errors, "report: top level is not an object")
        return
    version = doc.get("schema_version")
    # Version history: 1 = original; 2 adds the top-level "coverage" array
    # (all v1 keys unchanged).
    if version not in (1, 2):
        fail(errors, "report: schema_version %r, want 1 or 2" % version)
    for key in ("all_ok", "totals", "properties"):
        if key not in doc:
            fail(errors, "report: missing %r" % key)
    for prop in doc.get("properties", []):
        for key in ("name", "events", "activations", "holds", "failures",
                    "uncompleted", "steps", "failure_log"):
            if key not in prop:
                fail(errors, "report: property %r missing %r"
                     % (prop.get("name"), key))
        for failure in prop.get("failure_log", []):
            if "time_ns" not in failure or "witness" not in failure:
                fail(errors, "report: malformed failure in %r" % prop.get("name"))
    if version == 2:
        coverage = doc.get("coverage")
        if not isinstance(coverage, list):
            fail(errors, "report: schema_version 2 without a coverage array")
            coverage = []
        names = {p.get("name") for p in doc.get("properties", [])}
        for row in coverage:
            for key in ("name", "activations", "holds", "failures", "trivial",
                        "real_passes", "vacuous_passes", "missed_deadlines",
                        "node_visits", "dynamically_vacuous", "latency_ns"):
                if key not in row:
                    fail(errors, "report: coverage row %r missing %r"
                         % (row.get("name"), key))
            if row.get("name") not in names:
                fail(errors, "report: coverage row %r has no property row"
                     % row.get("name"))
            if row.get("holds") != (row.get("real_passes", 0) +
                                    row.get("vacuous_passes", 0)):
                fail(errors, "report: coverage row %r: holds %r != real %r + "
                     "vacuous %r" % (row.get("name"), row.get("holds"),
                                     row.get("real_passes"),
                                     row.get("vacuous_passes")))
    print("report ok: schema v%s, %d properties, all_ok=%s"
          % (version, len(doc.get("properties", [])), doc.get("all_ok")))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON from --trace-out")
    parser.add_argument("--report", help="report JSON from --report-out")
    parser.add_argument("--min-spans-per-lane", type=int, default=1)
    parser.add_argument("--strict", action="store_true",
                        help="fail on span names the engine does not emit")
    args = parser.parse_args()

    errors = []
    try:
        with open(args.trace) as f:
            trace = json.load(f)
    except (OSError, ValueError) as e:
        fail(errors, "cannot parse %s: %s" % (args.trace, e))
    else:
        check_events(trace, errors, args.min_spans_per_lane, args.strict)

    if args.report:
        try:
            with open(args.report) as f:
                report = json.load(f)
        except (OSError, ValueError) as e:
            fail(errors, "cannot parse %s: %s" % (args.report, e))
        else:
            check_report(report, errors)

    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
