// tracelog: inspect and validate on-disk trace logs (support::tracelog).
//
//   tracelog dump FILE       decode FILE and print it as JSONL (meta line,
//                            then one record object per line) on stdout —
//                            the same debug encoding .jsonl logs use, so the
//                            output is itself a loadable trace log.
//   tracelog validate FILE   fully decode FILE (magic, schema version, CRCs,
//                            trailer, record structure); prints a one-line
//                            verdict. Exit 0 when the log is well-formed,
//                            1 when it is rejected (the distinct error kind
//                            is part of the message), 2 on usage errors.
//   tracelog stats FILE      print stream identity and per-frame statistics:
//                            design/level/clock, observable dictionary,
//                            record and frame counts, time span.
//
// Replaying a log through the checkers is the job of the example binaries
// (--replay); this tool only looks at the container format.
#include <cstdio>
#include <cstring>
#include <string>

#include "support/tracelog.h"
#include "tlm/record_source.h"
#include "tlm/transaction.h"

using namespace repro;
using support::tracelog::TraceReader;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s dump|validate|stats FILE\n", argv0);
}

int open_or_report(TraceReader& reader, const char* path) {
  if (auto err = reader.open(path)) {
    std::fprintf(stderr, "tracelog: %s: %s\n", path, err->to_string().c_str());
    return 1;
  }
  return 0;
}

int cmd_dump(const char* path) {
  TraceReader reader;
  if (int rc = open_or_report(reader, path)) return rc;
  std::string line;
  support::tracelog::write_jsonl_meta(line, reader.meta());
  std::fputs(line.c_str(), stdout);
  for (const tlm::TransactionRecord& r : reader.records()) {
    line.clear();
    support::tracelog::write_jsonl_record(line, r, reader.meta().observables);
    std::fputs(line.c_str(), stdout);
  }
  return 0;
}

int cmd_validate(const char* path) {
  TraceReader reader;
  if (int rc = open_or_report(reader, path)) return rc;
  std::printf("%s: ok (schema %u, %zu records, %zu frames)\n", path,
              support::tracelog::kSchemaVersion, reader.records().size(),
              reader.frame_sizes().size());
  return 0;
}

int cmd_stats(const char* path) {
  TraceReader reader;
  if (int rc = open_or_report(reader, path)) return rc;
  const tlm::RecordStreamMeta& meta = reader.meta();
  std::printf("design:          %s\n", meta.design.c_str());
  std::printf("level:           %s\n", meta.level.c_str());
  std::printf("clock_period_ns: %llu\n",
              static_cast<unsigned long long>(meta.clock_period_ns));
  std::printf("observables:     %zu (", meta.observables.size());
  for (size_t i = 0; i < meta.observables.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : " ", meta.observables[i].c_str());
  }
  std::printf(")\n");
  std::printf("records:         %zu\n", reader.records().size());
  std::printf("frames:          %zu\n", reader.frame_sizes().size());
  size_t min_frame = 0;
  size_t max_frame = 0;
  for (size_t n : reader.frame_sizes()) {
    if (min_frame == 0 || n < min_frame) min_frame = n;
    if (n > max_frame) max_frame = n;
  }
  std::printf("frame records:   min %zu, max %zu\n", min_frame, max_frame);
  if (!reader.records().empty()) {
    std::printf("time span:       %llu..%llu ns\n",
                static_cast<unsigned long long>(reader.records().front().start),
                static_cast<unsigned long long>(reader.records().back().end));
    size_t with_obs = 0;
    for (const tlm::TransactionRecord& r : reader.records()) {
      if (!r.observables.empty()) ++with_obs;
    }
    std::printf("with snapshots:  %zu\n", with_obs);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    usage(argv[0]);
    return 2;
  }
  const char* command = argv[1];
  const char* path = argv[2];
  if (std::strcmp(command, "dump") == 0) return cmd_dump(path);
  if (std::strcmp(command, "validate") == 0) return cmd_validate(path);
  if (std::strcmp(command, "stats") == 0) return cmd_stats(path);
  usage(argv[0]);
  return 2;
}
