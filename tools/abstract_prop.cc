// abstract_prop: command-line front end for the RTL -> TLM property
// abstraction pipeline.
//
// Feeds one property (or a whole built-in suite) through the rewrite
// pipeline — NNF, signal abstraction (Fig. 4), push-ahead, next substitution
// (Algorithm III.1), context mapping (Def. III.2) — and prints every stage,
// the Fig. 4 classification, and the flat checker program the TLM formula
// compiles to.
//
// Usage:
//   abstract_prop [--suite des56|colorconv] [--period NS]
//                 [--abstract SIGNAL]... [--analyze]
//                 [--prune off|safe|aggressive] [PROPERTY_TEXT]
//
//   --suite NAME      abstract the named built-in suite (default: des56
//                     when no PROPERTY_TEXT is given). The suite supplies
//                     its clock period and abstracted-signal set.
//   --period NS       clock period for next -> next_e substitution
//                     (default 10; ignored with --suite).
//   --abstract SIG    mark SIGNAL as abstracted away at TLM (repeatable;
//                     ignored with --suite).
//   --analyze         also run the static analysis battery (psl_lint's
//                     checks) and print its diagnostics per property.
//   --prune MODE      also build the analysis-guided prune plan over the
//                     input set and print which properties the runtime
//                     would elide or subsume (default off).
//   --symbolic        also run the symbolic bounded trajectory evaluation
//                     (SYM001..SYM005, with replay-verified failure
//                     witnesses) as part of --analyze, and feed its
//                     evidence into --prune (16-step budget).
//   PROPERTY_TEXT     a single RTL property, e.g.
//                     "p: always (!ds || next[3](rdy)) @clk_pos".
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/driver.h"
#include "analysis/prune.h"
#include "checker/program.h"
#include "models/properties.h"
#include "psl/parser.h"
#include "rewrite/methodology.h"
#include "rewrite/pass_manager.h"
#include "support/strutil.h"

using namespace repro;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--suite des56|colorconv] [--period NS]\n"
               "          [--abstract SIGNAL]... [--analyze] [--symbolic]\n"
               "          [--prune off|safe|aggressive] [PROPERTY_TEXT]\n",
               argv0);
}

// Runs the static analysis battery on `p` and prints its diagnostics.
void print_analysis(analysis::Driver& driver, const psl::RtlProperty& p) {
  const analysis::PropertyAnalysis& record = driver.analyze(p);
  for (const analysis::Diagnostic& d : record.diagnostics) {
    std::printf("  %s\n", analysis::to_string(d).c_str());
  }
}

void print_prune_plan(const std::vector<psl::RtlProperty>& properties,
                      analysis::PruneMode mode,
                      const analysis::SymbolicPruneOptions& symbolic) {
  std::vector<analysis::PruneInput> inputs;
  inputs.reserve(properties.size());
  for (const auto& p : properties) {
    inputs.push_back(analysis::make_prune_input(p));
  }
  const analysis::PrunePlan plan =
      analysis::build_prune_plan(inputs, mode, /*atom_cap=*/20, symbolic);
  std::printf("\nprune plan (%s): %zu live, %zu elided, %zu subsumed\n",
              analysis::to_string(plan.mode), plan.live(), plan.elided(),
              plan.subsumed());
  for (const analysis::Diagnostic& d : plan.diagnostics()) {
    std::printf("  %s\n", analysis::to_string(d).c_str());
  }
}

void print_outcome(const psl::RtlProperty& p,
                   const rewrite::AbstractionOutcome& outcome) {
  std::printf("%s\n", psl::to_string(p).c_str());
  std::fputs(rewrite::format_passes(outcome.passes).c_str(), stdout);
  std::printf("  classification: %s\n",
              rewrite::to_string(outcome.classification));
  for (const std::string& note : outcome.notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  if (outcome.deleted()) {
    std::printf("  tlm: (deleted)\n");
    return;
  }
  std::printf("  tlm: %s\n", psl::to_string(*outcome.property).c_str());
  std::printf("  compiled program:\n");
  const auto program = checker::Program::compile(outcome.property->formula);
  program->dump(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string suite_name;
  psl::TimeNs period = 10;
  std::set<std::string> abstracted;
  std::string text;
  bool analyze = false;
  bool symbolic = false;
  analysis::PruneMode prune = analysis::PruneMode::kOff;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      suite_name = argv[++i];
    } else if (std::strcmp(argv[i], "--period") == 0 && i + 1 < argc) {
      const std::optional<uint64_t> parsed = repro::parse_u64(argv[++i]);
      if (!parsed.has_value() || *parsed == 0) {
        std::fprintf(stderr, "bad --period value '%s' (want a positive integer)\n",
                     argv[i]);
        usage(argv[0]);
        return 2;
      }
      period = static_cast<psl::TimeNs>(*parsed);
    } else if (std::strcmp(argv[i], "--abstract") == 0 && i + 1 < argc) {
      abstracted.insert(argv[++i]);
    } else if (std::strcmp(argv[i], "--analyze") == 0) {
      analyze = true;
    } else if (std::strcmp(argv[i], "--symbolic") == 0) {
      symbolic = true;
    } else if (std::strcmp(argv[i], "--prune") == 0 && i + 1 < argc) {
      if (!analysis::parse_prune_mode(argv[++i], prune)) {
        std::fprintf(stderr,
                     "bad --prune value '%s' (want off, safe or aggressive)\n",
                     argv[i]);
        usage(argv[0]);
        return 2;
      }
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
      return 2;
    } else if (text.empty()) {
      text = argv[i];
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (!suite_name.empty() && !text.empty()) {
    std::fprintf(stderr, "--suite and PROPERTY_TEXT are mutually exclusive\n");
    return 2;
  }

  if (!text.empty()) {
    auto parsed = psl::parse_rtl_property(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.error().to_string().c_str());
      return 1;
    }
    rewrite::AbstractionOptions options;
    options.clock_period_ns = period;
    options.abstracted_signals = abstracted;
    const psl::RtlProperty p = std::move(parsed).take();
    print_outcome(p, rewrite::abstract_property(p, options));
    if (analyze || symbolic) {
      analysis::AnalysisOptions aopts;
      aopts.abstraction = options;
      if (symbolic) aopts.symbolic_budget = 16;
      analysis::Driver driver(aopts);
      std::printf("  analysis:\n");
      print_analysis(driver, p);
    }
    if (prune != analysis::PruneMode::kOff) {
      analysis::SymbolicPruneOptions sopts;
      sopts.enabled = symbolic;
      sopts.clock_period_ns = period;
      print_prune_plan({p}, prune, sopts);
    }
    return 0;
  }

  if (suite_name.empty()) suite_name = "des56";
  models::PropertySuite suite;
  if (suite_name == "des56") {
    suite = models::des56_suite();
  } else if (suite_name == "colorconv") {
    suite = models::colorconv_suite();
  } else {
    std::fprintf(stderr, "unknown suite '%s' (expected des56 or colorconv)\n",
                 suite_name.c_str());
    return 2;
  }

  rewrite::AbstractionOptions options;
  options.clock_period_ns = suite.clock_period_ns;
  options.abstracted_signals = suite.abstracted_signals;
  const std::vector<rewrite::AbstractionOutcome> outcomes =
      rewrite::abstract_suite(suite.properties, options);
  analysis::AnalysisOptions aopts;
  aopts.abstraction = options;
  if (symbolic) aopts.symbolic_budget = 16;
  analysis::Driver driver(aopts);
  for (size_t i = 0; i < suite.properties.size(); ++i) {
    if (i != 0) std::printf("\n");
    print_outcome(suite.properties[i], outcomes[i]);
    if (analyze || symbolic) {
      std::printf("  analysis:\n");
      print_analysis(driver, suite.properties[i]);
    }
  }
  if (prune != analysis::PruneMode::kOff) {
    analysis::SymbolicPruneOptions sopts;
    sopts.enabled = symbolic;
    sopts.clock_period_ns = suite.clock_period_ns;
    print_prune_plan(suite.properties, prune, sopts);
  }
  return 0;
}
