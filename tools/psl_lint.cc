// psl_lint: static property linter over the analysis::Driver battery.
//
// Lints the built-in property suites, ad-hoc property text, or property
// files through every static check — simple-subset conformance, boolean-layer
// semantics, the Thm. III.2 consequence audit, environment binding and
// checker sizing — and prints compiler-style diagnostics (or the
// schema_version'd JSON report).
//
// Usage:
//   psl_lint [--suite des56|colorconv]... [--period NS] [--abstract SIG]...
//            [--observable NAME]... [--text PROPERTY]... [--json]
//            [--prune off|safe|aggressive] [--Werror] [FILE...]
//
//   --suite NAME      lint a built-in suite with its own clock period,
//                     abstracted signals and per-level observables
//                     (repeatable; default when nothing else is given: both)
//   --period NS       clock period for ad-hoc input (default 10)
//   --abstract SIG    abstracted signal for ad-hoc input (repeatable)
//   --observable NAME RTL observable for ad-hoc env binding (repeatable;
//                     none given skips the env-binding pass)
//   --text PROP       lint one property given on the command line
//                     (repeatable), e.g. "p: always (!ds || next[3](rdy))"
//   FILE              lint a property file (name: formula @ctx; per line)
//   --json            machine-readable report instead of text
//   --prune MODE      additionally build the analysis-guided prune plan per
//                     unit (off|safe|aggressive, default off) and report
//                     which properties the runtime would elide or subsume
//                     (PRN001/002/004 notes, plan summary line)
//   --symbolic        run the symbolic bounded trajectory evaluation
//                     (SYM001..SYM005: never-fails, dead program nodes,
//                     temporal static vacuity, replay-verified failure
//                     witnesses) with the default 16-step budget; also
//                     feeds the prune plan when --prune is active
//   --symbolic-budget N   same, with an explicit step/instant budget
//   --Werror          exit non-zero on warnings too (--Werror-analysis is
//                     accepted as an alias, matching the example binaries)
//
// Exit status: 0 clean, 1 diagnostics at the failing severity, 2 usage or
// I/O error. Parse failures are reported as PSL000 error diagnostics.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/driver.h"
#include "analysis/prune.h"
#include "models/properties.h"
#include "models/testbench.h"
#include "psl/parser.h"
#include "support/strutil.h"

using namespace repro;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--suite des56|colorconv]... [--period NS]\n"
      "          [--abstract SIG]... [--observable NAME]...\n"
      "          [--text PROPERTY]... [--json] [--prune off|safe|aggressive]\n"
      "          [--symbolic] [--symbolic-budget N] [--Werror] [FILE...]\n",
      argv0);
}

analysis::Diagnostic parse_diagnostic(const std::string& unit,
                                      const Error& error) {
  analysis::Diagnostic d;
  d.code = "PSL000";
  d.severity = analysis::Severity::kError;
  d.property = unit;
  d.check = "parse";
  d.message = error.message;
  if (error.position >= 0) d.span = {error.position, 1};
  return d;
}

struct LintUnit {
  std::string name;  // suite name, file path, or "<text>"
  analysis::AnalysisOptions options;
  std::vector<psl::RtlProperty> properties;
  std::vector<analysis::SourceSpan> spans;  // parallel to properties
  std::vector<analysis::Diagnostic> parse_errors;
};

LintUnit suite_unit(const std::string& name, const models::PropertySuite& s,
                    models::Design design) {
  LintUnit unit;
  unit.name = name;
  unit.options.abstraction.clock_period_ns = s.clock_period_ns;
  unit.options.abstraction.abstracted_signals = s.abstracted_signals;
  unit.options.rtl_observables =
      models::level_observables(design, models::Level::kRtl);
  unit.options.tlm_observables =
      models::level_observables(design, models::Level::kTlmAt);
  unit.properties = s.properties;
  unit.spans.resize(unit.properties.size());
  return unit;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> suites;
  std::vector<std::string> texts;
  std::vector<std::string> files;
  psl::TimeNs period = 10;
  analysis::AnalysisOptions adhoc;
  bool json = false;
  bool werror = false;
  analysis::PruneMode prune = analysis::PruneMode::kOff;
  size_t symbolic_budget = 0;  // 0 = symbolic pass off

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      suites.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--period") == 0 && i + 1 < argc) {
      const std::optional<uint64_t> parsed = repro::parse_u64(argv[++i]);
      if (!parsed.has_value() || *parsed == 0) {
        std::fprintf(stderr, "bad --period value '%s' (want a positive integer)\n",
                     argv[i]);
        usage(argv[0]);
        return 2;
      }
      period = static_cast<psl::TimeNs>(*parsed);
    } else if (std::strcmp(argv[i], "--abstract") == 0 && i + 1 < argc) {
      adhoc.abstraction.abstracted_signals.insert(argv[++i]);
    } else if (std::strcmp(argv[i], "--observable") == 0 && i + 1 < argc) {
      adhoc.rtl_observables.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--text") == 0 && i + 1 < argc) {
      texts.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--prune") == 0 && i + 1 < argc) {
      if (!analysis::parse_prune_mode(argv[++i], prune)) {
        std::fprintf(stderr,
                     "bad --prune value '%s' (want off, safe or aggressive)\n",
                     argv[i]);
        usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--symbolic") == 0) {
      if (symbolic_budget == 0) symbolic_budget = 16;
    } else if (std::strcmp(argv[i], "--symbolic-budget") == 0 && i + 1 < argc) {
      const std::optional<uint64_t> parsed = repro::parse_u64(argv[++i]);
      if (!parsed.has_value() || *parsed == 0) {
        std::fprintf(
            stderr,
            "bad --symbolic-budget value '%s' (want a positive integer)\n",
            argv[i]);
        usage(argv[0]);
        return 2;
      }
      symbolic_budget = static_cast<size_t>(*parsed);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--Werror") == 0 ||
               std::strcmp(argv[i], "--Werror-analysis") == 0) {
      werror = true;
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  adhoc.abstraction.clock_period_ns = period;
  adhoc.symbolic_budget = symbolic_budget;
  if (suites.empty() && texts.empty() && files.empty()) {
    suites = {"des56", "colorconv"};
  }

  std::vector<LintUnit> units;
  for (const std::string& name : suites) {
    if (name == "des56") {
      units.push_back(
          suite_unit(name, models::des56_suite(), models::Design::kDes56));
      units.back().options.symbolic_budget = symbolic_budget;
    } else if (name == "colorconv") {
      units.push_back(suite_unit(name, models::colorconv_suite(),
                                 models::Design::kColorConv));
      units.back().options.symbolic_budget = symbolic_budget;
    } else {
      std::fprintf(stderr, "unknown suite '%s' (expected des56 or colorconv)\n",
                   name.c_str());
      return 2;
    }
  }
  for (const std::string& text : texts) {
    LintUnit unit;
    unit.name = "<text>";
    unit.options = adhoc;
    auto parsed = psl::parse_rtl_property(text);
    if (parsed.ok()) {
      unit.properties.push_back(std::move(parsed).take());
      unit.spans.push_back({});
    } else {
      unit.parse_errors.push_back(parse_diagnostic(unit.name, parsed.error()));
    }
    units.push_back(std::move(unit));
  }
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    LintUnit unit;
    unit.name = path;
    unit.options = adhoc;
    std::vector<int> offsets;
    auto parsed = psl::parse_rtl_property_file(buf.str(), &offsets);
    if (parsed.ok()) {
      unit.properties = std::move(parsed).take();
      for (size_t i = 0; i < unit.properties.size(); ++i) {
        unit.spans.push_back(
            {i < offsets.size() ? offsets[i] : -1, 0});
      }
    } else {
      unit.parse_errors.push_back(parse_diagnostic(unit.name, parsed.error()));
    }
    units.push_back(std::move(unit));
  }

  analysis::DiagnosticCounts totals;
  if (json) std::cout << "{\"schema_version\":1,\"units\":[";
  bool first_unit = true;
  for (const LintUnit& unit : units) {
    analysis::Driver driver(unit.options);
    for (analysis::Diagnostic d : unit.parse_errors) {
      driver.add_diagnostic(std::move(d));
    }
    for (size_t i = 0; i < unit.properties.size(); ++i) {
      driver.analyze(unit.properties[i], unit.spans[i]);
    }
    analysis::PrunePlan plan;
    if (prune != analysis::PruneMode::kOff) {
      std::vector<analysis::PruneInput> inputs;
      inputs.reserve(unit.properties.size());
      for (const auto& p : unit.properties) {
        inputs.push_back(analysis::make_prune_input(p));
      }
      analysis::SymbolicPruneOptions symbolic;
      symbolic.enabled = symbolic_budget > 0;
      symbolic.clock_period_ns = unit.options.abstraction.clock_period_ns;
      symbolic.step_budget = symbolic_budget;
      plan = analysis::build_prune_plan(inputs, prune, /*atom_cap=*/20,
                                        symbolic);
    }
    if (json) {
      if (!first_unit) std::cout << ",";
      std::cout << "{\"unit\":\"" << unit.name << "\",\"report\":";
      driver.write_json(std::cout);
      if (prune != analysis::PruneMode::kOff) {
        std::cout << ",\"prune_plan\":";
        plan.write_json(std::cout);
      }
      std::cout << "}";
    } else {
      std::cout << "== " << unit.name << " ==\n";
      driver.render_text(std::cout);
      if (prune != analysis::PruneMode::kOff) {
        for (const analysis::Diagnostic& d : plan.diagnostics()) {
          std::cout << analysis::to_string(d) << "\n";
        }
        std::cout << "prune plan (" << analysis::to_string(plan.mode)
                  << "): " << plan.live() << " live, " << plan.elided()
                  << " elided, " << plan.subsumed() << " subsumed\n";
      }
    }
    first_unit = false;
    analysis::DiagnosticCounts c = driver.counts();
    for (const analysis::Diagnostic& d : plan.diagnostics()) {
      if (d.severity == analysis::Severity::kNote) ++c.notes;
      if (d.severity == analysis::Severity::kWarning) ++c.warnings;
      if (d.severity == analysis::Severity::kError) ++c.errors;
      if (analysis::is_skip_code(d.code)) ++c.skipped;
    }
    totals.notes += c.notes;
    totals.warnings += c.warnings;
    totals.errors += c.errors;
    totals.skipped += c.skipped;
  }
  if (json) {
    std::cout << "],\"totals\":{\"notes\":" << totals.notes
              << ",\"warnings\":" << totals.warnings
              << ",\"errors\":" << totals.errors
              << ",\"skipped\":" << totals.skipped << "}}\n";
  }

  if (totals.errors > 0) return 1;
  if (werror && totals.warnings > 0) return 1;
  return 0;
}
